"""The HAL's bit-parity guarantee.

The default ``sim`` array with an empty scenario stack must reproduce
the pre-HAL pipeline *bitwise*: SimArray.program delegates to the very
``device.program_cells`` call the deployer used to make, the deployer
draws its scenario seed only when scenarios are configured, and the
engines built ``from_array`` read the same cells a from-cells
construction would. The sweep below asserts equality at every level —
raw programming draws, dense/conv deployments, tiled engines, ideal
and finite ADCs — mirroring ``tests/backend/test_equivalence.py``.
"""

import numpy as np
import pytest

from repro.array import get_array
from repro.array.scenarios import ScenarioArray
from repro.array.sim import SimArray
from repro.core import DeployConfig, Deployer
from repro.core.offsets import OffsetPlan
from repro.device.cell import MLC2, SLC
from repro.device.faults import FaultyDeviceModel
from repro.device.lut import DeviceModel
from repro.device.variation import VariationModel
from repro.nn.trainer import evaluate_accuracy
from repro.utils.rng import make_rng
from repro.xbar.adc import ADC
from repro.xbar.engine import CrossbarEngine
from repro.xbar.mapper import CrossbarMapper
from repro.xbar.tiled import TiledCrossbarEngine


def make_device(sigma=0.5, cell=SLC):
    return DeviceModel(cell, VariationModel(sigma), n_bits=8)


class TestProgrammingParity:
    """SimArray.program is the identical draw sequence as the device."""

    @pytest.mark.parametrize("cell", [SLC, MLC2], ids=["slc", "mlc2"])
    @pytest.mark.parametrize("sigma", [0.0, 0.5])
    def test_matches_device_program_cells(self, cell, sigma):
        device = make_device(sigma, cell)
        values = make_rng(0).integers(0, 256, size=(9, 5))
        direct = device.program_cells(values, make_rng(7))
        via_hal = SimArray(device, 9, 5).program(values, make_rng(7))
        np.testing.assert_array_equal(via_hal, direct)

    def test_matches_faulty_device(self):
        base = make_device(0.4)
        direct_dev = FaultyDeviceModel(base, 0.1, 0.05, rng=3)
        hal_dev = FaultyDeviceModel(base, 0.1, 0.05, rng=3)
        values = make_rng(1).integers(0, 256, size=(12, 4))
        direct = direct_dev.program_cells(values, make_rng(9))
        via_hal = SimArray(hal_dev, 12, 4).program(values, make_rng(9))
        np.testing.assert_array_equal(via_hal, direct)

    def test_empty_scenario_stack_is_identity(self):
        device = make_device(0.5)
        values = make_rng(2).integers(0, 256, size=(8, 6))
        bare = SimArray(device, 8, 6).program(values, make_rng(5))
        wrapped = ScenarioArray(SimArray(device, 8, 6), (), seed=123)
        np.testing.assert_array_equal(wrapped.program(values, make_rng(5)),
                                      bare)
        np.testing.assert_array_equal(wrapped.read_back(), bare)


class TestEngineFromArray:
    """Engines built from an array equal from-cells construction."""

    def build(self, rows, cols, m, cell, seed, adc, tiled=False):
        rng = make_rng(seed)
        device = make_device(0.5, cell)
        plan = OffsetPlan(rows, cols, m)
        values = rng.integers(0, 256, size=(rows, cols))
        array = get_array("sim")(device, rows, cols)
        cells = array.program(values, rng)
        registers = rng.integers(-40, 40,
                                 size=(plan.n_groups, cols)).astype(float)
        complement = rng.random((plan.n_groups, cols)) > 0.5
        common = dict(plan=plan, registers=registers, complement=complement,
                      weight_bits=8, input_bits=8, weight_scale=0.01,
                      weight_zero_point=128, input_scale=1 / 255, adc=adc)
        if tiled:
            mapper = CrossbarMapper(size=128,
                                    cells_per_weight=cells.shape[-1])
            ref = TiledCrossbarEngine(cells=cells, cell=cell, mapper=mapper,
                                      **common)
            alt = TiledCrossbarEngine.from_array(array, **common)
        else:
            ref = CrossbarEngine(cells=cells, cell=cell, **common)
            alt = CrossbarEngine.from_array(array, **common)
        return ref, alt

    @pytest.mark.parametrize("adc", [None, ADC(bits=6, full_scale=64.0)],
                             ids=["ideal-adc", "6bit-adc"])
    @pytest.mark.parametrize("cell", [SLC, MLC2], ids=["slc", "mlc2"])
    @pytest.mark.parametrize("tiled", [False, True], ids=["dense", "tiled"])
    def test_forward_identical(self, adc, cell, tiled):
        rows = 150 if tiled else 16
        ref, alt = self.build(rows, 5, 8, cell, seed=11, adc=adc,
                              tiled=tiled)
        x = make_rng(12).uniform(0, 1, size=(6, rows))
        np.testing.assert_array_equal(alt.forward(x), ref.forward(x))

    def test_from_array_uses_array_mapper(self):
        device = make_device(0.3, MLC2)
        array = get_array("sim")(device, 10, 3)
        mapper = CrossbarMapper.for_array(array)
        assert mapper.cells_per_weight == array.cells_per_weight == 4


class TestDeployerParity:
    """Whole deployments: default HAL == explicit array == no scenarios."""

    def deploy_acc(self, model, data, rng_seed=0, program_seed=1, **cfg_kw):
        cfg = DeployConfig.from_method("vawo*+pwt", sigma=0.5, granularity=8,
                                       **cfg_kw)
        deployer = Deployer(model, data, cfg, rng=rng_seed)
        deployed = deployer.program(rng=make_rng(program_seed))
        return evaluate_accuracy(deployed, data)

    def test_dense_deployment_bitwise(self, trained_tiny_mlp, blob_data):
        base = self.deploy_acc(trained_tiny_mlp, blob_data)
        explicit = self.deploy_acc(trained_tiny_mlp, blob_data, array="sim")
        empty_stack = self.deploy_acc(trained_tiny_mlp, blob_data,
                                      array="sim", scenarios=())
        assert base == explicit == empty_stack

    def test_dense_with_saf_bitwise(self, trained_tiny_mlp, blob_data):
        base = self.deploy_acc(trained_tiny_mlp, blob_data,
                               saf_rates=(0.1, 0.02))
        explicit = self.deploy_acc(trained_tiny_mlp, blob_data,
                                   saf_rates=(0.1, 0.02), array="sim",
                                   scenarios=None)
        assert base == explicit

    def test_conv_deployment_bitwise(self):
        from repro.data.loaders import Dataset
        from repro.data.synthetic import synthetic_digits
        from repro.nn.models import LeNet

        images, labels = synthetic_digits(80, rng=0)
        data = Dataset(images, labels)
        model = LeNet(rng=0)
        cfg_a = DeployConfig.from_method("plain", sigma=0.4, granularity=16)
        cfg_b = DeployConfig.from_method("plain", sigma=0.4, granularity=16,
                                         array="sim", scenarios=())
        out_a = Deployer(model, data, cfg_a, rng=0).program(rng=make_rng(1))
        out_b = Deployer(model, data, cfg_b, rng=0).program(rng=make_rng(1))
        from repro.nn.tensor import Tensor
        x = Tensor(data.images[:6])
        np.testing.assert_array_equal(out_a(x).data, out_b(x).data)

    def test_deployed_layers_hold_their_arrays(self, trained_tiny_mlp,
                                               blob_data):
        from repro.core.pwt import crossbar_modules
        cfg = DeployConfig.from_method("plain", sigma=0.3, granularity=8)
        deployer = Deployer(trained_tiny_mlp, blob_data, cfg, rng=0)
        deployed = deployer.program(rng=make_rng(1))
        mods = crossbar_modules(deployed)
        assert len(deployer.arrays) == len(mods)
        for mod, array in zip(mods, deployer.arrays):
            np.testing.assert_array_equal(array.read_back(), mod.cells)

    def test_unknown_array_fails_at_construction(self, trained_tiny_mlp,
                                                 blob_data):
        cfg = DeployConfig.from_method("plain", sigma=0.3, array="nope")
        with pytest.raises(ValueError, match="nope"):
            Deployer(trained_tiny_mlp, blob_data, cfg, rng=0)

    def test_parallel_trials_bitwise_with_hal(self, trained_tiny_mlp,
                                              blob_data):
        from repro.eval.accuracy import evaluate_deployment
        cfg = DeployConfig.from_method("plain", sigma=0.5, granularity=8,
                                       scenarios="stuck_at:sa0_rate=0.2")
        deployer = Deployer(trained_tiny_mlp, blob_data, cfg, rng=0)
        serial = evaluate_deployment(deployer, blob_data, n_trials=3,
                                     rng=42, jobs=1)
        parallel = evaluate_deployment(deployer, blob_data, n_trials=3,
                                       rng=42, jobs=2)
        assert serial.accuracies == parallel.accuracies
