"""The composable non-ideality scenario engine (repro.array.scenarios)."""

import numpy as np
import pytest

from repro.array.scenarios import (DriftScenario, ProgramNoiseScenario,
                                   Scenario, ScenarioArray, StuckAtScenario,
                                   TempCoefficientScenario,
                                   available_scenarios, parse_scenario_spec,
                                   register_scenario,
                                   scenario_key_components)
from repro.array.sim import SimArray
from repro.device.cell import MLC2, SLC
from repro.device.lut import DeviceModel
from repro.device.variation import VariationModel
from repro.utils.rng import make_rng


def make_array(sigma=0.0, cell=SLC, rows=8, cols=6):
    device = DeviceModel(cell, VariationModel(sigma), n_bits=8)
    return SimArray(device, rows, cols)


def values_for(array, seed=0):
    return make_rng(seed).integers(0, 256, size=(array.rows, array.cols))


class TestSpecParsing:
    def test_none_and_empty(self):
        assert parse_scenario_spec(None) == ()
        assert parse_scenario_spec("") == ()
        assert parse_scenario_spec(()) == ()

    def test_string_form_round_trip(self):
        stack = parse_scenario_spec(
            "stuck_at:sa0_rate=0.05,sa1_rate=0.01;drift:t_seconds=1e4")
        assert [s.name for s in stack] == ["stuck_at", "drift"]
        assert stack[0].sa0_rate == 0.05 and stack[0].sa1_rate == 0.01
        assert stack[1].t_seconds == 1e4
        assert stack[1].nu_mean == 0.05         # omitted params keep defaults

    def test_string_form_no_params(self):
        (sc,) = parse_scenario_spec("program_noise")
        assert isinstance(sc, ProgramNoiseScenario) and sc.sigma == 0.1

    def test_scenario_instances_pass_through(self):
        sc = DriftScenario(t_seconds=5.0)
        assert parse_scenario_spec([sc]) == (sc,)

    def test_dict_form(self):
        (sc,) = parse_scenario_spec([{"name": "temperature",
                                      "temperature": 400.0}])
        assert isinstance(sc, TempCoefficientScenario)
        assert sc.temperature == 400.0

    def test_unknown_scenario(self):
        with pytest.raises(ValueError, match="unknown scenario"):
            parse_scenario_spec("radiation")

    def test_unknown_parameter(self):
        with pytest.raises(ValueError, match="no parameter"):
            parse_scenario_spec("drift:half_life=3")

    def test_malformed_pair(self):
        with pytest.raises(ValueError, match="key=value"):
            parse_scenario_spec("drift:t_seconds")

    def test_non_numeric_value(self):
        with pytest.raises(ValueError, match="numeric"):
            parse_scenario_spec("drift:t_seconds=long")

    def test_dict_without_name(self):
        with pytest.raises(ValueError, match="name"):
            parse_scenario_spec([{"t_seconds": 3.0}])

    def test_bad_entry_type(self):
        with pytest.raises(TypeError):
            parse_scenario_spec([42])

    def test_registry_lists_builtins(self):
        names = available_scenarios()
        assert {"stuck_at", "temperature", "drift",
                "program_noise"} <= set(names)

    def test_register_duplicate_raises(self):
        with pytest.raises(ValueError):
            register_scenario(StuckAtScenario)


class TestScenarioPhysics:
    def test_temperature_identity_at_reference(self):
        sc = TempCoefficientScenario(temperature=300.0, t_ref=300.0)
        cells = make_rng(0).uniform(0.1, 1.0, size=(4, 4, 1))
        state = sc.init_state(cells.shape, SLC, make_rng(1))
        np.testing.assert_array_equal(sc.apply(cells, SLC, state,
                                               make_rng(2)), cells)

    def test_temperature_clips_at_zero(self):
        sc = TempCoefficientScenario(temperature=1000.0, t_ref=300.0,
                                     alpha_mean=-0.1, alpha_std=0.0)
        cells = np.full((2, 2, 1), 0.5)
        state = sc.init_state(cells.shape, SLC, make_rng(0))
        out = sc.apply(cells, SLC, state, make_rng(1))
        assert (out == 0.0).all()               # negative G clipped

    def test_drift_identity_at_t0(self):
        sc = DriftScenario(t_seconds=1.0, t0_seconds=1.0)
        cells = make_rng(0).uniform(0.1, 1.0, size=(3, 3, 1))
        state = sc.init_state(cells.shape, SLC, make_rng(1))
        np.testing.assert_array_equal(sc.apply(cells, SLC, state,
                                               make_rng(2)), cells)

    def test_drift_decays_conductance(self):
        sc = DriftScenario(t_seconds=1e6, nu_mean=0.1, nu_std=0.0)
        cells = np.full((4, 4, 1), 0.8)
        state = sc.init_state(cells.shape, SLC, make_rng(0))
        out = sc.apply(cells, SLC, state, make_rng(1))
        assert (out < cells).all()
        np.testing.assert_allclose(out, cells * 1e6 ** -0.1)

    def test_drift_invalid_times(self):
        with pytest.raises(ValueError):
            DriftScenario(t_seconds=0.0)
        with pytest.raises(ValueError):
            DriftScenario(t0_seconds=-1.0)

    def test_program_noise_zero_sigma_identity(self):
        sc = ProgramNoiseScenario(sigma=0.0)
        cells = make_rng(0).uniform(size=(3, 3, 1))
        out = sc.apply(cells, SLC, None, make_rng(1))
        np.testing.assert_array_equal(out, cells)
        assert out is not cells                 # never aliases the input

    def test_program_noise_negative_sigma(self):
        with pytest.raises(ValueError):
            ProgramNoiseScenario(sigma=-0.5)

    def test_stuck_at_pins_cells(self):
        sc = StuckAtScenario(sa0_rate=0.4, sa1_rate=0.3)
        cells = np.full((20, 20, 1), 0.5)
        state = sc.init_state(cells.shape, SLC, make_rng(0))
        out = sc.apply(cells, SLC, state, make_rng(1))
        g_off = SLC.conductance(np.zeros(1))[0]
        np.testing.assert_array_equal(out[state.stuck_at_0], g_off)
        np.testing.assert_array_equal(out[state.stuck_at_1], 1.0)
        healthy = ~(state.stuck_at_0 | state.stuck_at_1)
        np.testing.assert_array_equal(out[healthy], 0.5)


class TestScenarioArray:
    def test_stuck_at_changes_programmed_cells(self):
        array = make_array(sigma=0.3)
        values = values_for(array)
        bare = make_array(sigma=0.3).program(values, make_rng(7))
        wrapped = ScenarioArray(array, parse_scenario_spec(
            "stuck_at:sa0_rate=0.3,sa1_rate=0.1"), seed=0)
        cells = wrapped.program(values, make_rng(7))
        assert not np.array_equal(cells, bare)
        np.testing.assert_array_equal(wrapped.read_back(), cells)

    def test_persistent_state_across_cycles(self):
        wrapped = ScenarioArray(make_array(sigma=0.0), parse_scenario_spec(
            "stuck_at:sa0_rate=0.5"), seed=3)
        values = values_for(wrapped)
        a = wrapped.program(values, make_rng(1))
        b = wrapped.program(values, make_rng(2))
        # sigma=0 and persistent faults: the two cycles read identically.
        np.testing.assert_array_equal(a, b)

    def test_state_deterministic_in_wrapper_seed(self):
        spec = "temperature:alpha_std=0.01"
        values = values_for(make_array())
        runs = [ScenarioArray(make_array(), parse_scenario_spec(spec),
                              seed=9).program(values, make_rng(4))
                for _ in range(2)]
        np.testing.assert_array_equal(runs[0], runs[1])
        other = ScenarioArray(make_array(), parse_scenario_spec(spec),
                              seed=10).program(values, make_rng(4))
        assert not np.array_equal(runs[0], other)

    def test_stack_applies_in_order(self):
        values = values_for(make_array())
        drift = DriftScenario(t_seconds=100.0, nu_mean=0.1, nu_std=0.0)
        stuck = StuckAtScenario(sa0_rate=0.5, sa1_rate=0.0)
        a = ScenarioArray(make_array(), (stuck, drift),
                          seed=0).program(values, make_rng(1))
        b = ScenarioArray(make_array(), (drift, stuck),
                          seed=0).program(values, make_rng(1))
        # stuck-then-drift decays the pinned cells; drift-then-stuck
        # re-pins them afterwards — different physics, different cells.
        assert not np.array_equal(a, b)

    def test_geometry_delegation(self):
        wrapped = ScenarioArray(make_array(cell=MLC2, rows=5, cols=4), (),
                                seed=0)
        assert (wrapped.rows, wrapped.cols) == (5, 4)
        assert wrapped.cells_per_weight == 4
        assert wrapped.cell is MLC2

    def test_vmm_sees_perturbed_state(self):
        wrapped = ScenarioArray(make_array(sigma=0.0), parse_scenario_spec(
            "drift:t_seconds=100,nu_mean=0.1,nu_std=0"), seed=0)
        values = values_for(wrapped)
        cells = wrapped.program(values, make_rng(1))
        out = wrapped.vmm(np.ones(wrapped.rows))
        np.testing.assert_allclose(
            out, cells.reshape(wrapped.rows, -1).sum(axis=0))

    def test_obs_counter_increments(self):
        import repro.obs as obs
        from repro.obs import metrics as obs_metrics
        was = obs.enabled()
        obs.enable()
        obs_metrics.REGISTRY.reset()
        try:
            wrapped = ScenarioArray(make_array(), parse_scenario_spec(
                "stuck_at"), seed=0)
            wrapped.program(values_for(wrapped), make_rng(1))
            snapshot = obs_metrics.REGISTRY.snapshot()
            assert snapshot["counters"]["scenario.stuck_at.applied"] == 1
            assert snapshot["counters"]["array.program_cycles"] == 1
        finally:
            obs_metrics.REGISTRY.reset()
            if not was:
                obs.disable()


class TestKeyComponents:
    def test_scenario_parameters_in_keys(self):
        a = StuckAtScenario(sa0_rate=0.05).key_components()
        b = StuckAtScenario(sa0_rate=0.06).key_components()
        assert a != b
        assert a["scenario"] == "stuck_at"

    def test_stack_key_components(self):
        stack = parse_scenario_spec("stuck_at;drift")
        comps = scenario_key_components(stack)
        assert len(comps) == 2
        assert comps[0]["scenario"] == "stuck_at"
        assert scenario_key_components(()) == ()

    def test_wrapper_extends_inner_components(self):
        wrapped = ScenarioArray(make_array(), parse_scenario_spec(
            "drift:t_seconds=50"), seed=0)
        comps = wrapped.key_components()
        assert comps["array"] == "sim"
        assert comps["scenarios"][0]["t_seconds"] == 50.0

    def test_components_fingerprint_into_cache_keys(self):
        from repro.cache.keys import fingerprint
        base = make_array()
        k_empty = fingerprint(ScenarioArray(base, (), 0).key_components())
        k_drift = fingerprint(
            ScenarioArray(base, parse_scenario_spec("drift"),
                          0).key_components())
        assert k_empty != k_drift


class TestWriteVerifyArray:
    def test_converges_and_loads_back(self):
        from repro.device.programming import write_verify_array
        array = make_array(sigma=0.3, rows=10, cols=6)
        values = values_for(array)
        result = write_verify_array(array, values, rel_tolerance=0.2,
                                    max_pulses=10, rng=make_rng(0))
        assert result.crw.shape == values.shape
        assert (result.pulses >= 1).all()
        assert result.converged.mean() > 0.5
        # The accepted cell image is the array's current state.
        from repro.quant.bitslice import assemble_weights
        np.testing.assert_array_equal(
            assemble_weights(array.read_back(), array.cell.bits), result.crw)

    def test_sigma_zero_single_pulse(self):
        from repro.device.programming import write_verify_array
        array = make_array(sigma=0.0, rows=4, cols=4)
        result = write_verify_array(array, values_for(array),
                                    rel_tolerance=0.5, rng=make_rng(0))
        assert (result.pulses == 1).all()
        assert result.converged.all()

    def test_invalid_args(self):
        from repro.device.programming import write_verify_array
        array = make_array()
        with pytest.raises(ValueError):
            write_verify_array(array, values_for(array), rel_tolerance=0.0)
        with pytest.raises(ValueError):
            write_verify_array(array, values_for(array), max_pulses=0)
