"""The array-family registry (repro.array) — mirrors the backend one."""

import numpy as np
import pytest

from repro.array import (BUILTIN_DEFAULT, ENV_VAR, ArrayBackend,
                         available_arrays, default_array_name, get_array,
                         register_array, set_default_array, use_array)
from repro.array.sim import SimArray
from repro.device.cell import SLC
from repro.device.lut import DeviceModel
from repro.device.variation import VariationModel


@pytest.fixture(autouse=True)
def _clean_default(monkeypatch):
    """Leave no default override or env selection behind."""
    monkeypatch.delenv(ENV_VAR, raising=False)
    yield
    set_default_array(None)


def make_device(sigma=0.3, cell=SLC):
    return DeviceModel(cell, VariationModel(sigma), n_bits=8)


class TestRegistry:
    def test_builtin_sim_registered(self):
        assert "sim" in available_arrays()
        assert default_array_name() == BUILTIN_DEFAULT == "sim"

    def test_get_array_builds_sim(self):
        array = get_array("sim")(make_device(), 4, 3)
        assert isinstance(array, SimArray)
        assert (array.rows, array.cols) == (4, 3)

    def test_unknown_name_raises_with_listing(self):
        with pytest.raises(ValueError, match="sim"):
            get_array("fpga")

    def test_factories_not_singletons(self):
        factory = get_array("sim")
        dev = make_device()
        assert factory(dev, 2, 2) is not factory(dev, 2, 2)

    def test_register_and_replace(self):
        factory = get_array("sim")
        with pytest.raises(ValueError):
            register_array("sim", factory)          # duplicate
        register_array("sim", factory, replace=True)

    def test_register_custom_family(self):
        calls = []

        def fake_factory(device, rows, cols):
            calls.append((rows, cols))
            return SimArray(device, rows, cols)

        register_array("test-fake", fake_factory)
        try:
            array = get_array("test-fake")(make_device(), 5, 7)
            assert calls == [(5, 7)]
            assert isinstance(array, ArrayBackend)
        finally:
            # registry is module-global: leave it as we found it
            from repro import array as array_mod
            with array_mod._LOCK:
                array_mod._FACTORIES.pop("test-fake", None)


class TestDefaultSelection:
    def test_env_variable(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "sim")
        assert default_array_name() == "sim"
        monkeypatch.setenv(ENV_VAR, "  ")           # blank falls through
        assert default_array_name() == BUILTIN_DEFAULT

    def test_set_default_overrides_env(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "nonexistent")
        set_default_array("sim")
        assert default_array_name() == "sim"
        set_default_array(None)
        assert default_array_name() == "nonexistent"

    def test_set_default_validates_eagerly(self):
        with pytest.raises(ValueError):
            set_default_array("typo")
        assert default_array_name() == BUILTIN_DEFAULT

    def test_use_array_restores_previous(self):
        set_default_array("sim")
        with use_array("sim") as factory:
            assert callable(factory)
            assert default_array_name() == "sim"
        assert default_array_name() == "sim"
        set_default_array(None)

    def test_use_array_unknown_name(self):
        with pytest.raises(ValueError):
            with use_array("typo"):
                pass                               # pragma: no cover


class TestSimArrayContract:
    def test_program_and_read_back(self):
        array = SimArray(make_device(sigma=0.0), 4, 3)
        values = np.arange(12).reshape(4, 3) % 2 * 255
        cells = array.program(values, rng=0)
        assert cells.shape == (4, 3, 8)         # 8-bit weights, 1-bit cells
        np.testing.assert_array_equal(array.read_back(), cells)

    def test_read_back_unprogrammed(self):
        with pytest.raises(RuntimeError):
            SimArray(make_device(), 2, 2).read_back()

    def test_program_shape_check(self):
        with pytest.raises(ValueError):
            SimArray(make_device(), 4, 3).program(np.zeros((3, 4)), rng=0)

    def test_load_cells_shape_check(self):
        with pytest.raises(ValueError):
            SimArray(make_device(), 4, 3).load_cells(np.zeros((4, 3, 2)))

    def test_invalid_dimensions(self):
        with pytest.raises(ValueError):
            SimArray(make_device(), 0, 3)

    def test_vmm_shapes(self):
        from repro.device.cell import MLC2
        array = SimArray(make_device(cell=MLC2), 6, 3)
        array.program(np.full((6, 3), 100), rng=0)
        assert array.cells_per_weight == 4
        out = array.vmm(np.ones(6))
        assert out.shape == (3 * 4,)
        grouped = array.vmm_grouped(np.ones((2, 6)), group_rows=4)
        assert grouped.shape == (2, 2, 3 * 4)
        np.testing.assert_allclose(grouped.sum(axis=1),
                                   array.vmm(np.ones((2, 6))))

    def test_key_components(self):
        from repro.device.faults import FaultyDeviceModel
        plain = SimArray(make_device(), 2, 2).key_components()
        assert plain["array"] == "sim"
        assert "sa0_rate" not in plain            # no wrapper, no fault keys
        faulty = SimArray(FaultyDeviceModel(make_device(), 0.1, 0.02, rng=0),
                          2, 2)
        comps = faulty.key_components()
        assert comps["sa0_rate"] == 0.1 and comps["sa1_rate"] == 0.02

    def test_program_weights_assembles(self):
        array = SimArray(make_device(sigma=0.0), 3, 3)
        values = np.arange(9).reshape(3, 3) * 28
        crw = array.program_weights(values, rng=0)
        assert crw.shape == (3, 3)
        # sigma=0: CRWs equal the written values up to ON/OFF leakage.
        np.testing.assert_allclose(crw, values, atol=values.max() / 100)
