"""Deployment snapshots."""

import numpy as np
import pytest

from repro.core import DeployConfig, Deployer
from repro.core.snapshot import (load_deployment, save_deployment,
                                 snapshot_exists)
from repro.nn.tensor import Tensor


@pytest.fixture
def deployer(trained_tiny_mlp, blob_data):
    cfg = DeployConfig.from_method("vawo*", sigma=0.5, granularity=8)
    return Deployer(trained_tiny_mlp, blob_data, cfg, rng=0)


class TestSnapshotRoundtrip:
    def test_outputs_identical_after_restore(self, deployer, blob_data,
                                             tmp_path):
        deployed = deployer.program(rng=3)
        path = str(tmp_path / "chip")
        save_deployment(deployed, path)
        restored = load_deployment(deployer, path)
        x = Tensor(blob_data.images[:8])
        np.testing.assert_allclose(restored(x).data, deployed(x).data,
                                   atol=1e-12)

    def test_offsets_and_complement_restored(self, deployer, tmp_path):
        from repro.core.pwt import crossbar_modules
        deployed = deployer.program(rng=3)
        mods = crossbar_modules(deployed)
        mods[0].offsets.data += 7.0       # post-hoc tuning state
        path = str(tmp_path / "chip")
        save_deployment(deployed, path)
        restored_mods = crossbar_modules(load_deployment(deployer, path))
        for orig, rest in zip(mods, restored_mods):
            np.testing.assert_array_equal(orig.offsets.data,
                                          rest.offsets.data)
            np.testing.assert_array_equal(orig.complement_mask,
                                          rest.complement_mask)

    def test_exists_helper(self, deployer, tmp_path):
        path = str(tmp_path / "chip")
        assert not snapshot_exists(path)
        save_deployment(deployer.program(rng=1), path)
        assert snapshot_exists(path)

    def test_layer_count_mismatch_rejected(self, deployer, tmp_path,
                                           trained_tiny_mlp, blob_data):
        path = str(tmp_path / "chip")
        save_deployment(deployer.program(rng=1), path)
        # A deployer over a different granularity changes the register
        # layout -> cells still match, but offsets/complement would not;
        # the rows/cols check catches structural mismatches.
        cfg = DeployConfig.from_method("plain", sigma=0.5, granularity=4)
        other = Deployer(trained_tiny_mlp, blob_data, cfg, rng=0)
        with pytest.raises(Exception):
            load_deployment(other, path)

    def test_non_crossbar_model_rejected(self, trained_tiny_mlp, tmp_path):
        with pytest.raises(ValueError):
            save_deployment(trained_tiny_mlp, str(tmp_path / "x"))
