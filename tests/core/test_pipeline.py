"""End-to-end deployment pipeline."""

import numpy as np
import pytest

from repro.core import DeployConfig, Deployer
from repro.core.crossbar_layers import CrossbarLinear
from repro.core.pipeline import mappable_layers, weight_to_matrix
from repro.core.pwt import crossbar_modules
from repro.device.cell import MLC2
from repro.nn.layers import Linear
from repro.nn.tensor import Tensor
from repro.nn.trainer import evaluate_accuracy


class TestDeployConfig:
    def test_from_method_names(self):
        for name in DeployConfig.METHODS:
            cfg = DeployConfig.from_method(name)
            assert cfg.method_name == name

    def test_unknown_method(self):
        with pytest.raises(ValueError):
            DeployConfig.from_method("magic")

    def test_invalid_lut_source(self):
        with pytest.raises(ValueError):
            DeployConfig(lut_source="oracle")

    def test_kwargs_forwarded(self):
        cfg = DeployConfig.from_method("vawo*", sigma=0.8, granularity=64)
        assert cfg.sigma == 0.8 and cfg.granularity == 64
        assert cfg.use_vawo and cfg.use_complement and not cfg.use_pwt


class TestHelpers:
    def test_weight_to_matrix_linear(self, rng):
        w = rng.normal(size=(3, 5))
        np.testing.assert_array_equal(weight_to_matrix(w), w.T)

    def test_weight_to_matrix_conv(self, rng):
        w = rng.normal(size=(4, 2, 3, 3))
        mat = weight_to_matrix(w)
        assert mat.shape == (18, 4)
        np.testing.assert_array_equal(mat[:, 1], w[1].reshape(-1))

    def test_weight_to_matrix_invalid(self):
        with pytest.raises(ValueError):
            weight_to_matrix(np.zeros(3))

    def test_mappable_layers_finds_both(self, tiny_mlp):
        layers = mappable_layers(tiny_mlp)
        assert len(layers) == 2
        assert all(isinstance(m, Linear) for _, m in layers)


class TestDeployer:
    def test_plain_deployment_structure(self, trained_tiny_mlp, blob_data):
        cfg = DeployConfig.from_method("plain", sigma=0.3, granularity=8)
        deployer = Deployer(trained_tiny_mlp, blob_data, cfg, rng=0)
        model = deployer.program(rng=1)
        mods = crossbar_modules(model)
        assert len(mods) == 2
        assert all(isinstance(m, CrossbarLinear) for m in mods)

    def test_original_model_untouched(self, trained_tiny_mlp, blob_data):
        before = {n: p.data.copy()
                  for n, p in trained_tiny_mlp.named_parameters()}
        cfg = DeployConfig.from_method("vawo*", sigma=0.3, granularity=8)
        deployer = Deployer(trained_tiny_mlp, blob_data, cfg, rng=0)
        deployer.program(rng=1)
        for n, p in trained_tiny_mlp.named_parameters():
            np.testing.assert_array_equal(p.data, before[n])

    def test_trials_differ(self, trained_tiny_mlp, blob_data):
        cfg = DeployConfig.from_method("plain", sigma=0.5, granularity=8)
        deployer = Deployer(trained_tiny_mlp, blob_data, cfg, rng=0)
        a = crossbar_modules(deployer.program(rng=1))[0].crw
        b = crossbar_modules(deployer.program(rng=2))[0].crw
        assert not np.array_equal(a, b)

    def test_trials_reproducible_by_seed(self, trained_tiny_mlp, blob_data):
        cfg = DeployConfig.from_method("plain", sigma=0.5, granularity=8)
        deployer = Deployer(trained_tiny_mlp, blob_data, cfg, rng=0)
        a = crossbar_modules(deployer.program(rng=7))[0].crw
        b = crossbar_modules(deployer.program(rng=7))[0].crw
        np.testing.assert_array_equal(a, b)

    def test_ideal_model_matches_quantized_reference(self, trained_tiny_mlp,
                                                     blob_data):
        """The ideal model's effective weights equal dequantized NTWs."""
        cfg = DeployConfig.from_method("vawo*", sigma=0.5, granularity=8)
        deployer = Deployer(trained_tiny_mlp, blob_data, cfg, rng=0)
        ideal = deployer.ideal_model()
        for prep, mod in zip(deployer.layers, crossbar_modules(ideal)):
            expected = prep.scale * (prep.ntw - prep.zero_point)
            np.testing.assert_allclose(mod.effective_weight_array(),
                                       expected, atol=1e-9)

    def test_ideal_model_restores_assignment(self, trained_tiny_mlp,
                                              blob_data):
        cfg = DeployConfig.from_method("vawo*", sigma=0.5, granularity=8)
        deployer = Deployer(trained_tiny_mlp, blob_data, cfg, rng=0)
        regs_before = [p.assignment.registers.copy() for p in deployer.layers]
        deployer.ideal_model()
        for prep, regs in zip(deployer.layers, regs_before):
            np.testing.assert_array_equal(prep.assignment.registers, regs)

    def test_ideal_accuracy_close_to_float(self, trained_tiny_mlp, blob_data):
        cfg = DeployConfig.from_method("plain", sigma=0.5, granularity=8)
        deployer = Deployer(trained_tiny_mlp, blob_data, cfg, rng=0)
        float_acc = evaluate_accuracy(trained_tiny_mlp, blob_data)
        ideal_acc = evaluate_accuracy(deployer.ideal_model(), blob_data)
        assert ideal_acc >= float_acc - 0.05

    def test_zero_sigma_plain_matches_ideal(self, trained_tiny_mlp,
                                            blob_data):
        """No variation: a plain deployment only differs by the tiny
        ON/OFF-ratio leak."""
        cfg = DeployConfig.from_method("plain", sigma=0.0, granularity=8)
        deployer = Deployer(trained_tiny_mlp, blob_data, cfg, rng=0)
        deployed_acc = evaluate_accuracy(deployer.program(rng=1), blob_data)
        ideal_acc = evaluate_accuracy(deployer.ideal_model(), blob_data)
        assert abs(deployed_acc - ideal_acc) < 0.05

    def test_input_quantizers_calibrated(self, trained_tiny_mlp, blob_data):
        cfg = DeployConfig.from_method("plain", sigma=0.3, granularity=8)
        deployer = Deployer(trained_tiny_mlp, blob_data, cfg, rng=0)
        for prep in deployer.layers:
            assert prep.input_quantizer._calibrated
            assert prep.input_quantizer.scale > 0

    def test_input_quant_disabled(self, trained_tiny_mlp, blob_data):
        cfg = DeployConfig.from_method("plain", sigma=0.3, granularity=8,
                                       input_bits=None)
        deployer = Deployer(trained_tiny_mlp, blob_data, cfg, rng=0)
        assert all(p.input_quantizer is None for p in deployer.layers)

    def test_monte_carlo_lut_source(self, trained_tiny_mlp, blob_data):
        cfg = DeployConfig.from_method(
            "vawo", sigma=0.4, granularity=8, lut_source="monte_carlo",
            lut_k_sets=8, lut_j_cycles=8)
        deployer = Deployer(trained_tiny_mlp, blob_data, cfg, rng=0)
        assert len(deployer.lut) == 256

    def test_mlc_cells(self, trained_tiny_mlp, blob_data):
        cfg = DeployConfig.from_method("plain", sigma=0.3, cell=MLC2,
                                       granularity=8)
        deployer = Deployer(trained_tiny_mlp, blob_data, cfg, rng=0)
        model = deployer.program(rng=1)
        assert crossbar_modules(model)[0].cells.shape[-1] == 4

    def test_total_registers(self, trained_tiny_mlp, blob_data):
        cfg = DeployConfig.from_method("plain", granularity=8)
        deployer = Deployer(trained_tiny_mlp, blob_data, cfg, rng=0)
        # Layer 1: 64 rows -> 8 groups x 24 cols; layer 2: 24 rows ->
        # 3 groups x 4 cols.
        assert deployer.total_registers() == 8 * 24 + 3 * 4

    def test_pwt_runs_inside_program(self, trained_tiny_mlp, blob_data):
        from repro.core.pwt import PWTConfig
        cfg = DeployConfig.from_method(
            "pwt", sigma=0.4, granularity=8,
            pwt=PWTConfig(epochs=1, lr=0.5, max_batches_per_epoch=3))
        deployer = Deployer(trained_tiny_mlp, blob_data, cfg, rng=0)
        model = deployer.program(rng=1)
        offsets = crossbar_modules(model)[0].offsets.data
        assert np.abs(offsets).sum() > 0    # moved away from zero

    def test_deployed_model_eval_mode(self, trained_tiny_mlp, blob_data):
        cfg = DeployConfig.from_method("plain", granularity=8)
        deployer = Deployer(trained_tiny_mlp, blob_data, cfg, rng=0)
        assert not deployer.program(rng=1).training


class TestAccuracyOrdering:
    """The paper's central qualitative claim on a controlled problem."""

    def test_methods_recover_accuracy(self, trained_tiny_mlp, blob_data):
        from repro.core.pwt import PWTConfig
        from repro.eval import evaluate_deployment

        float_acc = evaluate_accuracy(trained_tiny_mlp, blob_data)
        accs = {}
        for method in ("plain", "vawo*", "vawo*+pwt"):
            cfg = DeployConfig.from_method(
                method, sigma=0.6, granularity=8,
                pwt=PWTConfig(epochs=2, lr=0.5))
            deployer = Deployer(trained_tiny_mlp, blob_data, cfg, rng=0)
            accs[method] = evaluate_deployment(deployer, blob_data,
                                               n_trials=2, rng=5).mean
        assert accs["vawo*"] >= accs["plain"] - 0.02
        assert accs["vawo*+pwt"] >= accs["vawo*"] - 0.02
        assert accs["vawo*+pwt"] >= float_acc - 0.15
