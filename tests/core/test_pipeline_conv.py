"""Deployment of convolutional / residual / BatchNorm models.

The TinyMLP tests cover the dense path; these validate the structural
replacement machinery and the crossbar conv layers on real model
topologies — Sequential conv stacks (LeNet) and residual blocks with
BatchNorm and 1x1 projection shortcuts (ResNet).
"""

import numpy as np
import pytest

from repro.core import (DeployConfig, Deployer, PWTConfig,
                        recalibrate_batchnorm)
from repro.core.crossbar_layers import CrossbarConv2d, CrossbarLinear
from repro.core.pwt import crossbar_modules, run_pwt
from repro.data.loaders import Dataset
from repro.nn.models import LeNet, resnet_tiny
from repro.nn.tensor import Tensor
from repro.nn.trainer import evaluate_accuracy


@pytest.fixture(scope="module")
def digit_data():
    from repro.data.synthetic import synthetic_digits
    images, labels = synthetic_digits(120, rng=0)
    return Dataset(images, labels)


@pytest.fixture(scope="module")
def cifar_data():
    from repro.data.synthetic import synthetic_cifar
    images, labels = synthetic_cifar(80, rng=0)
    return Dataset(images, labels)


class TestLeNetDeployment:
    def test_all_layers_replaced(self, digit_data):
        model = LeNet(rng=0)
        cfg = DeployConfig.from_method("plain", sigma=0.3, granularity=16)
        deployer = Deployer(model, digit_data, cfg, rng=0)
        deployed = deployer.program(rng=1)
        mods = crossbar_modules(deployed)
        assert len(mods) == 5      # 2 convs + 3 linears
        assert sum(isinstance(m, CrossbarConv2d) for m in mods) == 2
        assert sum(isinstance(m, CrossbarLinear) for m in mods) == 3

    def test_forward_shape(self, digit_data):
        model = LeNet(rng=0)
        cfg = DeployConfig.from_method("plain", sigma=0.3, granularity=16)
        deployed = Deployer(model, digit_data, cfg, rng=0).program(rng=1)
        out = deployed(Tensor(digit_data.images[:4]))
        assert out.shape == (4, 10)

    def test_zero_sigma_matches_ideal_closely(self, digit_data):
        model = LeNet(rng=0)
        cfg = DeployConfig.from_method("plain", sigma=0.0, granularity=16)
        deployer = Deployer(model, digit_data, cfg, rng=0)
        deployed = deployer.program(rng=1)
        ideal = deployer.ideal_model()
        x = Tensor(digit_data.images[:4])
        # Only the ON/OFF-ratio leak (1.275 int units per weight,
        # accumulated over the dot products) separates them.
        np.testing.assert_allclose(deployed(x).data, ideal(x).data,
                                   atol=4.0)
        # And predictions agree.
        np.testing.assert_array_equal(deployed(x).argmax(axis=1),
                                      ideal(x).argmax(axis=1))

    def test_vawo_deployment_runs(self, digit_data):
        model = LeNet(rng=0)
        cfg = DeployConfig.from_method("vawo*", sigma=0.5, granularity=16,
                                       grad_batches=1, grad_batch_size=16)
        deployed = Deployer(model, digit_data, cfg, rng=0).program(rng=1)
        assert deployed(Tensor(digit_data.images[:2])).shape == (2, 10)


class TestResNetDeployment:
    def test_residual_structure_replaced(self, cifar_data):
        model = resnet_tiny(rng=0)
        cfg = DeployConfig.from_method("plain", sigma=0.3, granularity=16)
        deployer = Deployer(model, cifar_data, cfg, rng=0)
        deployed = deployer.program(rng=1)
        mods = crossbar_modules(deployed)
        # stem conv + 2 blocks x 2 convs + 1 projection conv + fc
        assert len(mods) == 7
        out = deployed(Tensor(cifar_data.images[:2]))
        assert out.shape == (2, 10)

    def test_pwt_trains_through_residuals(self, cifar_data):
        model = resnet_tiny(rng=0)
        cfg = DeployConfig.from_method("plain", sigma=0.4, granularity=16)
        deployed = Deployer(model, cifar_data, cfg, rng=0).program(rng=1)
        history = run_pwt(deployed, cifar_data,
                          PWTConfig(epochs=1, lr=0.5, batch_size=16,
                                    max_batches_per_epoch=3), rng=2)
        assert len(history.losses) == 3
        # Every layer's offsets received gradient signal.
        for mod in crossbar_modules(deployed):
            assert np.abs(mod.offsets.data).sum() > 0

    def test_batchnorm_stays_digital(self, cifar_data):
        from repro.nn.layers import BatchNorm2d
        model = resnet_tiny(rng=0)
        cfg = DeployConfig.from_method("plain", sigma=0.3, granularity=16)
        deployed = Deployer(model, cifar_data, cfg, rng=0).program(rng=1)
        bns = [m for _, m in deployed.named_modules()
               if isinstance(m, BatchNorm2d)]
        assert len(bns) == 6       # stem + 2 per block + projection


class TestBatchnormRecalibration:
    def test_stats_refreshed(self, cifar_data):
        from repro.nn.layers import BatchNorm2d
        model = resnet_tiny(rng=0)
        cfg = DeployConfig.from_method("plain", sigma=0.8, granularity=16)
        deployed = Deployer(model, cifar_data, cfg, rng=0).program(rng=1)
        before = [np.array(m.running_mean, copy=True)
                  for _, m in deployed.named_modules()
                  if isinstance(m, BatchNorm2d)]
        recalibrate_batchnorm(deployed, cifar_data, n_batches=2,
                              batch_size=16, rng=3)
        after = [m.running_mean for _, m in deployed.named_modules()
                 if isinstance(m, BatchNorm2d)]
        assert any(not np.array_equal(b, a) for b, a in zip(before, after))

    def test_parameters_untouched(self, cifar_data):
        model = resnet_tiny(rng=0)
        cfg = DeployConfig.from_method("plain", sigma=0.8, granularity=16)
        deployed = Deployer(model, cifar_data, cfg, rng=0).program(rng=1)
        params_before = {n: p.data.copy()
                         for n, p in deployed.named_parameters()}
        recalibrate_batchnorm(deployed, cifar_data, n_batches=2,
                              batch_size=16, rng=3)
        for n, p in deployed.named_parameters():
            np.testing.assert_array_equal(p.data, params_before[n])

    def test_returns_eval_mode(self, cifar_data):
        model = resnet_tiny(rng=0)
        cfg = DeployConfig.from_method("plain", sigma=0.4, granularity=16)
        deployed = Deployer(model, cifar_data, cfg, rng=0).program(rng=1)
        recalibrate_batchnorm(deployed, cifar_data, n_batches=1, rng=3)
        assert not deployed.training

    def test_noop_without_batchnorm(self, trained_tiny_mlp, blob_data):
        cfg = DeployConfig.from_method("plain", sigma=0.4, granularity=8)
        deployed = Deployer(trained_tiny_mlp, blob_data, cfg,
                            rng=0).program(rng=1)
        recalibrate_batchnorm(deployed, blob_data)   # must not raise


class TestCrossbarCount:
    def test_lenet_crossbar_count(self, digit_data):
        model = LeNet(rng=0)
        cfg = DeployConfig.from_method("plain", granularity=16)
        deployer = Deployer(model, digit_data, cfg, rng=0)
        # SLC: 8 cells/weight -> 16 weight cols per 128-crossbar.
        # conv1 25x6 -> 1; conv2 150x16 -> 2; fc 400x120 -> 4*8=32;
        # fc 120x84 -> 6; fc 84x10 -> 1. Total 42.
        assert deployer.crossbar_count() == 1 + 2 + 32 + 6 + 1
