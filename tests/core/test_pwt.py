"""Post-writing tuning: analytic init optimality and training behaviour."""

import numpy as np
import pytest

from repro.core import DeployConfig, Deployer
from repro.core.pwt import (PWTConfig, analytic_offset_init,
                            crossbar_modules, offset_parameters, run_pwt)
from repro.nn.trainer import evaluate_accuracy
from tests.conftest import TinyMLP


@pytest.fixture
def deployed(trained_tiny_mlp, blob_data):
    cfg = DeployConfig.from_method("plain", sigma=0.4, granularity=8)
    deployer = Deployer(trained_tiny_mlp, blob_data, cfg, rng=0)
    return deployer, deployer.program(rng=1)


class TestDiscovery:
    def test_offset_parameters_found(self, deployed):
        _, model = deployed
        params = offset_parameters(model)
        assert len(params) == 2          # two Linear layers in TinyMLP

    def test_crossbar_modules_found(self, deployed):
        _, model = deployed
        assert len(crossbar_modules(model)) == 2

    def test_run_pwt_rejects_plain_model(self, blob_data, trained_tiny_mlp):
        with pytest.raises(ValueError):
            run_pwt(trained_tiny_mlp, blob_data)


class TestAnalyticInit:
    def test_offsets_compensate_group_mean_error(self, deployed):
        """After init, the gradient-weighted group-mean weight error ~ 0."""
        _, model = deployed
        for mod in crossbar_modules(model):
            analytic_offset_init(mod)
            w_eff_q = mod._sign * (mod.crw + mod.plan.expand(mod.offsets.data)) \
                + mod._const
            err = w_eff_q - mod.ntw
            if mod.grad_weights is not None:
                weights = np.maximum(mod.grad_weights ** 2, 1e-12)
            else:
                weights = np.ones_like(err)
            group_err = mod.plan.group_reduce_weights(err * weights, "sum") \
                / mod.plan.group_reduce_weights(weights, "sum")
            # Zero unless the register range clipped.
            clipped = (np.abs(mod.offsets.data) >= 127)
            np.testing.assert_allclose(group_err[~clipped], 0.0, atol=1e-6)

    def test_init_is_weighted_least_squares_optimum(self, deployed):
        """Perturbing any register away from the init increases the
        weighted squared weight error."""
        _, model = deployed
        mod = crossbar_modules(model)[0]
        analytic_offset_init(mod)

        def weighted_mse(regs):
            w_eff = mod._sign * (mod.crw + mod.plan.expand(regs)) + mod._const
            return ((w_eff - mod.ntw) ** 2).sum()

        base = weighted_mse(mod.offsets.data)
        for delta in (+1.0, -1.0):
            perturbed = mod.offsets.data.copy()
            perturbed[0, 0] += delta
            assert weighted_mse(perturbed) >= base - 1e-9

    def test_requires_ntw_metadata(self, deployed):
        _, model = deployed
        mod = crossbar_modules(model)[0]
        mod.ntw = None
        with pytest.raises(ValueError):
            analytic_offset_init(mod)

    def test_improves_accuracy_over_zero_offsets(self, deployed, blob_data):
        deployer, model = deployed
        before = evaluate_accuracy(model, blob_data)
        for mod in crossbar_modules(model):
            analytic_offset_init(mod)
        after = evaluate_accuracy(model, blob_data)
        assert after >= before


class TestTraining:
    def test_loss_decreases(self, deployed, blob_data):
        _, model = deployed
        cfg = PWTConfig(epochs=3, lr=0.5, batch_size=32,
                        analytic_init=True, round_offsets=False)
        history = run_pwt(model, blob_data, cfg, rng=0)
        assert history.final_loss < history.initial_loss

    def test_only_offsets_move(self, deployed, blob_data):
        _, model = deployed
        mods = crossbar_modules(model)
        crw_before = [m.crw.copy() for m in mods]
        run_pwt(model, blob_data, PWTConfig(epochs=1, lr=0.5), rng=0)
        for mod, crw in zip(mods, crw_before):
            np.testing.assert_array_equal(mod.crw, crw)

    def test_round_offsets_lands_on_grid(self, deployed, blob_data):
        _, model = deployed
        run_pwt(model, blob_data,
                PWTConfig(epochs=1, lr=0.3, round_offsets=True), rng=0)
        for mod in crossbar_modules(model):
            np.testing.assert_array_equal(mod.offsets.data,
                                          np.round(mod.offsets.data))
            assert mod.offsets.data.min() >= -128
            assert mod.offsets.data.max() <= 127

    def test_config_validation(self):
        with pytest.raises(ValueError):
            PWTConfig(epochs=-1)
        with pytest.raises(ValueError):
            PWTConfig(lr=0.0)
        with pytest.raises(ValueError):
            PWTConfig(lr_decay=0.0)
        with pytest.raises(ValueError):
            PWTConfig(lr_decay=1.5)

    def test_lr_decay_applied_per_epoch(self, deployed, blob_data,
                                        monkeypatch):
        import repro.core.pwt as pwt_mod
        from repro.nn.optim import Adam

        captured = {}
        real_adam = Adam

        def capturing_adam(*args, **kwargs):
            opt = real_adam(*args, **kwargs)
            captured["opt"] = opt
            return opt

        monkeypatch.setattr(pwt_mod, "Adam", capturing_adam)
        _, model = deployed
        cfg = PWTConfig(epochs=3, lr=1.0, lr_decay=0.5, batch_size=64,
                        max_batches_per_epoch=1, round_offsets=False)
        run_pwt(model, blob_data, cfg, rng=0)
        assert captured["opt"].lr == pytest.approx(1.0 * 0.5 ** 3)

    def test_max_batches_limits_work(self, deployed, blob_data):
        _, model = deployed
        cfg = PWTConfig(epochs=1, lr=0.5, batch_size=16,
                        max_batches_per_epoch=2)
        history = run_pwt(model, blob_data, cfg, rng=0)
        assert len(history.losses) == 2
