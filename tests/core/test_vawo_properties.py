"""Property-based tests of the VAWO solver (hypothesis)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.offsets import OffsetPlan
from repro.core.vawo import run_vawo
from repro.device.cell import MLC2, SLC
from repro.device.lut import DeviceModel, build_lut_analytic
from repro.device.variation import VariationModel
from repro.utils.rng import make_rng

_LUTS = {
    (cell.bits, sigma): build_lut_analytic(
        DeviceModel(cell, VariationModel(sigma), n_bits=8))
    for cell in (SLC, MLC2) for sigma in (0.2, 0.5, 1.0)
}


@settings(max_examples=25, deadline=None)
@given(rows=st.integers(2, 24), cols=st.integers(1, 3),
       m=st.integers(2, 16), center=st.integers(40, 215),
       spread=st.integers(1, 40), cell_bits=st.sampled_from([1, 2]),
       sigma=st.sampled_from([0.2, 0.5, 1.0]),
       complement=st.booleans(), seed=st.integers(0, 10_000))
def test_eq6_always_satisfied(rows, cols, m, center, spread, cell_bits,
                              sigma, complement, seed):
    """For any weight configuration, the solution satisfies Eq. 6:
    the expected NRW matches the NTW within the bias tolerance."""
    rng = make_rng(seed)
    plan = OffsetPlan(rows, cols, m)
    ntw = np.clip(np.round(rng.normal(center, spread, size=(rows, cols))),
                  0, 255).astype(np.int64)
    grads = np.abs(rng.normal(size=(rows, cols))) + 0.01
    lut = _LUTS[(cell_bits, sigma)]
    tol = 2.0
    res = run_vawo(ntw, grads, lut, plan, use_complement=complement,
                   bias_tolerance=tol)
    # Solution invariants.
    assert res.ctw.min() >= 0 and res.ctw.max() <= 255
    assert res.registers.min() >= -128 and res.registers.max() <= 127
    # Eq. 6 within tolerance (barring the documented min-MSE fallback,
    # which for these centered configurations never triggers).
    comp = plan.expand(res.complement.astype(float)).astype(bool)
    e_v = lut.mean[res.ctw] + plan.expand(res.registers)
    e_nrw = np.where(comp, 255 - e_v, e_v)
    assert np.abs(e_nrw - ntw).max() <= tol + 1e-9


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_objective_never_exceeds_plain_variance(seed):
    """VAWO's optimum is at least as good as writing the NTWs directly
    with a zero offset (which is itself a feasible candidate whenever
    the NTW means are within tolerance — they are not under lognormal
    bias, so VAWO should do strictly better on average)."""
    rng = make_rng(seed)
    plan = OffsetPlan(16, 2, 8)
    ntw = np.clip(np.round(rng.normal(128, 25, size=(16, 2))),
                  0, 255).astype(np.int64)
    grads = np.ones((16, 2))
    lut = _LUTS[(1, 0.5)]
    res = run_vawo(ntw, grads, lut, plan)
    plain_variance = lut.var[ntw].reshape(2, 8, 2).sum(axis=1)
    assert (res.objective <= plain_variance + 1e-6).all()
