"""VAWO and the weight-complement enhancement."""

import numpy as np
import pytest

from repro.core.offsets import OffsetPlan
from repro.core.vawo import (offset_candidates, plain_assignment, run_vawo)
from repro.device.cell import MLC2, SLC
from repro.device.lut import DeviceModel, build_lut_analytic
from repro.device.variation import VariationModel
from repro.utils.rng import make_rng


def make_lut(sigma=0.5, cell=SLC):
    return build_lut_analytic(DeviceModel(cell, VariationModel(sigma),
                                          n_bits=8))


def bell_weights(rows, cols, seed=0, std=30):
    rng = make_rng(seed)
    return np.clip(np.round(rng.normal(128, std, size=(rows, cols))),
                   0, 255).astype(np.int64)


class TestOffsetCandidates:
    def test_8bit_range(self):
        c = offset_candidates(8)
        assert c.min() == -128 and c.max() == 127 and len(c) == 256

    def test_4bit_range(self):
        c = offset_candidates(4)
        assert c.min() == -8 and c.max() == 7

    def test_invalid(self):
        with pytest.raises(ValueError):
            offset_candidates(0)


class TestPlainAssignment:
    def test_ctw_equals_ntw(self):
        plan = OffsetPlan(8, 2, 4)
        ntw = bell_weights(8, 2)
        res = plain_assignment(ntw, plan)
        np.testing.assert_array_equal(res.ctw, ntw)
        assert not res.registers.any()
        assert not res.complement.any()

    def test_shape_check(self):
        with pytest.raises(ValueError):
            plain_assignment(np.zeros((3, 3), dtype=int), OffsetPlan(8, 2, 4))


class TestRunVAWO:
    def test_constraint_satisfied(self):
        """Eq. 6: E[R(v)] + b stays within tolerance of w* everywhere."""
        plan = OffsetPlan(32, 4, 8)
        ntw = bell_weights(32, 4)
        grads = np.abs(make_rng(1).normal(size=(32, 4)))
        lut = make_lut()
        res = run_vawo(ntw, grads, lut, plan, bias_tolerance=2.0)
        e_nrw = lut.mean[res.ctw] + plan.expand(res.registers)
        np.testing.assert_allclose(e_nrw, ntw, atol=2.0 + 1e-9)

    def test_complement_constraint_satisfied(self):
        plan = OffsetPlan(32, 4, 8)
        ntw = bell_weights(32, 4, seed=3)
        grads = np.ones((32, 4))
        lut = make_lut()
        res = run_vawo(ntw, grads, lut, plan, use_complement=True,
                       bias_tolerance=2.0)
        comp = plan.expand(res.complement.astype(float)).astype(bool)
        e_v = lut.mean[res.ctw] + plan.expand(res.registers)
        e_nrw = np.where(comp, 255 - e_v, e_v)
        np.testing.assert_allclose(e_nrw, ntw, atol=2.0 + 1e-9)

    def test_reduces_variance_vs_plain(self):
        """The whole point: chosen CTWs carry less variance than NTWs."""
        plan = OffsetPlan(64, 8, 16)
        ntw = bell_weights(64, 8, seed=5)
        grads = np.ones((64, 8))
        lut = make_lut()
        res = run_vawo(ntw, grads, lut, plan)
        assert lut.var[res.ctw].sum() < lut.var[ntw].sum() * 0.7

    def test_complement_never_worse(self):
        """VAWO* explores a superset of VAWO's solutions."""
        plan = OffsetPlan(64, 4, 16)
        ntw = bell_weights(64, 4, seed=7)
        grads = np.abs(make_rng(8).normal(size=(64, 4))) + 0.1
        lut = make_lut()
        plain_obj = run_vawo(ntw, grads, lut, plan).objective
        star_obj = run_vawo(ntw, grads, lut, plan,
                            use_complement=True).objective
        assert np.all(star_obj <= plain_obj + 1e-9)

    def test_complement_helps_high_weights(self):
        """A group of large weights should flip to complement storage."""
        plan = OffsetPlan(8, 1, 8)
        ntw = np.full((8, 1), 240, dtype=np.int64)
        grads = np.ones((8, 1))
        lut = make_lut()
        res = run_vawo(ntw, grads, lut, plan, use_complement=True)
        assert res.complement.all()
        # Complemented CTWs should be small (low variance states).
        assert res.ctw.mean() < 60

    def test_registers_within_register_width(self):
        plan = OffsetPlan(32, 2, 8)
        res = run_vawo(bell_weights(32, 2), np.ones((32, 2)), make_lut(),
                       plan, offset_bits=8)
        assert res.registers.min() >= -128 and res.registers.max() <= 127

    def test_narrow_offset_bits_restrict_solution(self):
        plan = OffsetPlan(16, 2, 8)
        ntw = bell_weights(16, 2, seed=9)
        lut = make_lut()
        res = run_vawo(ntw, np.ones((16, 2)), lut, plan, offset_bits=3)
        assert res.registers.min() >= -4 and res.registers.max() <= 3

    def test_finer_granularity_not_worse(self):
        """Smaller m gives more offsets, so the total objective can only
        improve (the paper's granularity story)."""
        ntw = bell_weights(64, 4, seed=11)
        grads = np.ones((64, 4))
        lut = make_lut()
        obj16 = run_vawo(ntw, grads, lut, OffsetPlan(64, 4, 16)).objective
        obj64 = run_vawo(ntw, grads, lut, OffsetPlan(64, 4, 64)).objective
        assert obj16.sum() <= obj64.sum() + 1e-9

    def test_zero_sigma_gives_near_zero_objective(self):
        plan = OffsetPlan(16, 2, 8)
        ntw = bell_weights(16, 2)
        lut = make_lut(sigma=0.0)
        res = run_vawo(ntw, np.ones((16, 2)), lut, plan)
        assert res.objective.max() < 1.0

    def test_shape_validation(self):
        plan = OffsetPlan(16, 2, 8)
        with pytest.raises(ValueError):
            run_vawo(np.zeros((8, 2), dtype=int), np.zeros((8, 2)),
                     make_lut(), plan)

    def test_range_validation(self):
        plan = OffsetPlan(4, 1, 2)
        bad = np.array([[300], [0], [0], [0]])
        with pytest.raises(ValueError):
            run_vawo(bad, np.ones((4, 1)), make_lut(), plan)

    def test_gradient_weighting_prioritises_sensitive_weights(self):
        """The high-gradient weight should end up with lower variance."""
        plan = OffsetPlan(8, 1, 8)
        rng = make_rng(13)
        ntw = np.clip(np.round(rng.normal(128, 40, size=(8, 1))),
                      0, 255).astype(np.int64)
        lut = make_lut()
        uniform = run_vawo(ntw, np.ones((8, 1)), lut, plan)
        focused_grads = np.ones((8, 1))
        focused_grads[3, 0] = 100.0
        focused = run_vawo(ntw, focused_grads, lut, plan)
        assert lut.var[focused.ctw[3, 0]] <= lut.var[uniform.ctw[3, 0]] + 1e-9

    def test_mlc_solutions_valid(self):
        plan = OffsetPlan(16, 2, 8)
        ntw = bell_weights(16, 2, seed=15)
        lut = make_lut(cell=MLC2)
        res = run_vawo(ntw, np.ones((16, 2)), lut, plan, use_complement=True)
        assert res.ctw.min() >= 0 and res.ctw.max() <= 255

    def test_partial_group_rows(self):
        plan = OffsetPlan(10, 2, 4)     # last group has 2 rows
        ntw = bell_weights(10, 2, seed=17)
        res = run_vawo(ntw, np.ones((10, 2)), make_lut(), plan)
        assert res.ctw.shape == (10, 2)
        assert res.registers.shape == (3, 2)
