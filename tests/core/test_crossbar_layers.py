"""Crossbar layers: effective weights, offset gradients, STE quantization."""

import numpy as np
import pytest

from repro.core.crossbar_layers import (CrossbarConv2d, CrossbarLinear,
                                        ste_quantize)
from repro.core.offsets import OffsetPlan
from repro.device.cell import SLC
from repro.device.lut import DeviceModel
from repro.device.variation import VariationModel
from repro.nn import functional as F
from repro.nn.tensor import Tensor
from repro.quant.quantizer import InputQuantizer
from repro.utils.rng import make_rng


def make_linear(rows=8, cols=3, m=4, sigma=0.3, seed=0, complement=None,
                input_quant=False, scale=0.01, zp=128):
    rng = make_rng(seed)
    device = DeviceModel(SLC, VariationModel(sigma), n_bits=8)
    plan = OffsetPlan(rows, cols, m)
    ntw = rng.integers(0, 256, size=(rows, cols))
    cells = device.program_cells(ntw, rng)
    registers = np.zeros((plan.n_groups, cols))
    if complement is None:
        complement = np.zeros((plan.n_groups, cols), dtype=bool)
    iq = None
    if input_quant:
        iq = InputQuantizer(8)
        iq.calibrate(np.array([1.0]))
    return CrossbarLinear(cells=cells, plan=plan, registers=registers,
                          complement=complement, cell=SLC, weight_bits=8,
                          weight_scale=scale, weight_zero_point=zp,
                          input_quantizer=iq, ntw=ntw)


class TestEffectiveWeights:
    def test_matches_crw_plus_offsets(self):
        layer = make_linear()
        layer.offsets.data[...] = 5.0
        w = layer.effective_weight_array()
        expected = 0.01 * (layer.crw + 5.0 - 128)
        np.testing.assert_allclose(w, expected)

    def test_complement_algebra(self):
        comp = np.ones((2, 3), dtype=bool)
        layer = make_linear(m=4, complement=comp)
        layer.offsets.data[...] = 3.0
        w = layer.effective_weight_array()
        expected = 0.01 * ((255 - (layer.crw + 3.0)) - 128)
        np.testing.assert_allclose(w, expected)

    def test_forward_is_matmul(self, rng):
        layer = make_linear()
        x = rng.uniform(size=(5, 8))
        out = layer(Tensor(x))
        np.testing.assert_allclose(out.data,
                                   x @ layer.effective_weight_array())

    def test_bias_added(self, rng):
        layer = make_linear()
        layer.bias = np.array([1.0, 2.0, 3.0])
        x = rng.uniform(size=(2, 8))
        out = layer(Tensor(x))
        np.testing.assert_allclose(
            out.data, x @ layer.effective_weight_array() + layer.bias)


class TestOffsetGradient:
    def test_eq8_gradient_identity(self, rng):
        """dL/db_g == dL/dz . sum(x in group g)  (Eq. 8), scaled by s_w."""
        layer = make_linear(m=4)
        x = rng.uniform(size=(6, 8))
        out = layer(Tensor(x))
        g_out = rng.normal(size=out.shape)
        out.backward(g_out)
        dz = g_out                                  # (N, cols)
        group_x = layer.plan.group_sum(x)           # (N, n_groups)
        expected = layer.weight_scale * np.einsum("ng,nc->gc", group_x, dz)
        np.testing.assert_allclose(layer.offsets.grad, expected, atol=1e-9)

    def test_complement_flips_gradient_sign(self, rng):
        comp = np.ones((2, 3), dtype=bool)
        base = make_linear(m=4, seed=1)
        flipped = make_linear(m=4, seed=1, complement=comp)
        x = rng.uniform(size=(4, 8))
        for layer in (base, flipped):
            out = layer(Tensor(x))
            out.sum().backward()
        np.testing.assert_allclose(base.offsets.grad,
                                   -flipped.offsets.grad, atol=1e-9)

    def test_grad_flows_to_inputs(self, rng):
        layer = make_linear()
        x = Tensor(rng.uniform(size=(2, 8)), requires_grad=True)
        layer(x).sum().backward()
        assert x.grad is not None and np.abs(x.grad).sum() > 0

    def test_crw_is_not_trainable(self):
        layer = make_linear()
        params = list(layer.parameters())
        assert len(params) == 1 and params[0] is layer.offsets


class TestSTEQuantize:
    def test_forward_quantizes(self):
        q = InputQuantizer(8)
        q.calibrate(np.array([1.0]))
        x = Tensor(np.array([0.5001]), requires_grad=True)
        out = ste_quantize(x, q)
        np.testing.assert_allclose(out.data, q.apply(x.data))

    def test_gradient_passes_through(self):
        q = InputQuantizer(8)
        q.calibrate(np.array([1.0]))
        x = Tensor(np.array([0.3, 0.7]), requires_grad=True)
        ste_quantize(x, q).sum().backward()
        np.testing.assert_array_equal(x.grad, [1.0, 1.0])


class TestQuantizeOffsets:
    def test_rounds_and_clips(self):
        layer = make_linear()
        layer.offsets.data[...] = np.array([[3.4, -200.0, 140.0]] * 2)
        layer.quantize_offsets(8)
        np.testing.assert_array_equal(layer.offsets.data,
                                      [[3.0, -128.0, 127.0]] * 2)


class TestConvLayer:
    def make_conv(self, seed=0, sigma=0.3):
        rng = make_rng(seed)
        device = DeviceModel(SLC, VariationModel(sigma), n_bits=8)
        kernel_shape = (4, 2, 3, 3)                 # F, C, kh, kw
        rows, cols = 2 * 9, 4
        plan = OffsetPlan(rows, cols, 6)
        ntw = rng.integers(0, 256, size=(rows, cols))
        cells = device.program_cells(ntw, rng)
        return CrossbarConv2d(
            cells=cells, plan=plan,
            registers=np.zeros((plan.n_groups, cols)),
            complement=np.zeros((plan.n_groups, cols), dtype=bool),
            cell=SLC, weight_bits=8, weight_scale=0.01,
            weight_zero_point=128, kernel_shape=kernel_shape,
            stride=1, padding=1)

    def test_forward_matches_reference_conv(self, rng):
        layer = self.make_conv()
        x = rng.uniform(size=(2, 2, 6, 6))
        out = layer(Tensor(x))
        w = layer.effective_weight_array()          # (18, 4)
        kernel = w.T.reshape(4, 2, 3, 3)
        expected = F.conv2d(Tensor(x), Tensor(kernel), None, 1, 1)
        np.testing.assert_allclose(out.data, expected.data, atol=1e-9)

    def test_offset_grads_exist(self, rng):
        layer = self.make_conv()
        out = layer(Tensor(rng.uniform(size=(1, 2, 5, 5))))
        out.sum().backward()
        assert layer.offsets.grad is not None
        assert np.abs(layer.offsets.grad).sum() > 0

    def test_kernel_shape_validation(self):
        layer = self.make_conv()
        with pytest.raises(ValueError):
            CrossbarConv2d(
                cells=layer.cells, plan=layer.plan,
                registers=layer.offsets.data,
                complement=layer.complement_mask, cell=SLC,
                weight_bits=8, weight_scale=0.01, weight_zero_point=128,
                kernel_shape=(4, 3, 3, 3))  # wrong C


class TestEngineConsistency:
    def test_make_engine_effective_weights_match(self, rng):
        layer = make_linear(input_quant=True)
        layer.offsets.data[...] = rng.integers(-10, 10,
                                               size=layer.offsets.shape)
        engine = layer.make_engine()
        np.testing.assert_allclose(engine.effective_weights(),
                                   layer.effective_weight_array())

    def test_bit_accurate_forward_matches_layer(self, rng):
        layer = make_linear(input_quant=True)
        x = rng.uniform(0, 1, size=(3, 8))
        got = layer.make_engine().forward(x)
        expected = layer(Tensor(x)).data
        np.testing.assert_allclose(got, expected, atol=1e-9)
