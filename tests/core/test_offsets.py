"""Offset sharing plan: grouping algebra."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.offsets import OffsetPlan
from repro.utils.rng import make_rng


class TestBasics:
    def test_group_count_exact_division(self):
        assert OffsetPlan(128, 4, 16).n_groups == 8

    def test_group_count_partial(self):
        assert OffsetPlan(100, 4, 16).n_groups == 7

    def test_register_count_eq9(self):
        """Eq. 9: H = S*l/m for a full 128-row, 32-col matrix."""
        assert OffsetPlan(128, 32, 16).n_registers == 256
        assert OffsetPlan(128, 32, 128).n_registers == 32

    def test_group_index(self):
        plan = OffsetPlan(6, 1, 2)
        np.testing.assert_array_equal(plan.group_index, [0, 0, 1, 1, 2, 2])

    def test_group_sizes_partial(self):
        plan = OffsetPlan(7, 1, 3)
        np.testing.assert_array_equal(plan.group_sizes, [3, 3, 1])

    def test_invalid(self):
        with pytest.raises(ValueError):
            OffsetPlan(0, 1, 1)
        with pytest.raises(ValueError):
            OffsetPlan(4, 4, 0)


class TestExpand:
    def test_expand_repeats_rows(self):
        plan = OffsetPlan(4, 2, 2)
        regs = np.array([[1.0, 2.0], [3.0, 4.0]])
        expanded = plan.expand(regs)
        np.testing.assert_array_equal(expanded,
                                      [[1, 2], [1, 2], [3, 4], [3, 4]])

    def test_expand_shape_check(self):
        with pytest.raises(ValueError):
            OffsetPlan(4, 2, 2).expand(np.zeros((3, 2)))

    def test_zeros(self):
        assert OffsetPlan(10, 3, 4).zeros().shape == (3, 3)


class TestGroupSum:
    def test_simple(self):
        plan = OffsetPlan(4, 1, 2)
        out = plan.group_sum(np.array([1.0, 2.0, 3.0, 4.0]))
        np.testing.assert_array_equal(out, [3.0, 7.0])

    def test_batched(self):
        plan = OffsetPlan(4, 1, 2)
        x = np.arange(8.0).reshape(2, 4)
        out = plan.group_sum(x)
        np.testing.assert_array_equal(out, [[1, 5], [9, 13]])

    def test_partial_group(self):
        plan = OffsetPlan(5, 1, 2)
        out = plan.group_sum(np.ones(5))
        np.testing.assert_array_equal(out, [2, 2, 1])

    def test_wrong_length(self):
        with pytest.raises(ValueError):
            OffsetPlan(4, 1, 2).group_sum(np.ones(5))

    def test_offset_dot_identity(self):
        """sum_i x_i * expand(b)_i == sum_g b_g * group_sum(x)_g  (Eq. 1)."""
        rng = make_rng(0)
        plan = OffsetPlan(12, 3, 4)
        b = rng.normal(size=(plan.n_groups, 3))
        x = rng.normal(size=12)
        lhs = (x[:, None] * plan.expand(b)).sum(axis=0)
        rhs = (plan.group_sum(x)[:, None] * b).sum(axis=0)
        np.testing.assert_allclose(lhs, rhs)


class TestGroupReduce:
    def test_mean(self):
        plan = OffsetPlan(4, 1, 2)
        w = np.array([[1.0], [3.0], [5.0], [7.0]])
        np.testing.assert_array_equal(
            plan.group_reduce_weights(w, "mean"), [[2.0], [6.0]])

    def test_sum(self):
        plan = OffsetPlan(4, 1, 2)
        w = np.array([[1.0], [3.0], [5.0], [7.0]])
        np.testing.assert_array_equal(
            plan.group_reduce_weights(w, "sum"), [[4.0], [12.0]])

    def test_mean_partial_group_uses_true_size(self):
        plan = OffsetPlan(3, 1, 2)
        w = np.array([[2.0], [4.0], [6.0]])
        np.testing.assert_array_equal(
            plan.group_reduce_weights(w, "mean"), [[3.0], [6.0]])

    def test_unknown_op(self):
        with pytest.raises(ValueError):
            OffsetPlan(2, 1, 2).group_reduce_weights(np.ones((2, 1)), "max")

    def test_pad_rows(self):
        plan = OffsetPlan(5, 2, 4)
        padded = plan.pad_rows(np.ones((5, 2)))
        assert padded.shape == (8, 2)
        np.testing.assert_array_equal(padded[5:], np.zeros((3, 2)))


@settings(max_examples=30, deadline=None)
@given(rows=st.integers(1, 40), cols=st.integers(1, 5),
       m=st.integers(1, 16))
def test_expand_group_sum_adjoint_property(rows, cols, m):
    """expand and group_sum are adjoint linear maps."""
    rng = make_rng(rows * 100 + cols * 10 + m)
    plan = OffsetPlan(rows, cols, m)
    b = rng.normal(size=(plan.n_groups, cols))
    x = rng.normal(size=rows)
    lhs = (x[:, None] * plan.expand(b)).sum()
    rhs = (plan.group_sum(x)[:, None] * b).sum()
    np.testing.assert_allclose(lhs, rhs, atol=1e-9)
