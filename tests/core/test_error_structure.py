"""Regression test for the design rationale behind hard Eq. 6 feasibility.

During development, an MSE-only VAWO objective produced solutions whose
per-weight error RMS looked fine but whose errors were *coherent*
(always-positive biases on the weights below each group's offset). This
test pins down the mathematical fact that motivated the fix: for the
same per-weight RMS, coherent error perturbs a column's dot-product
output ~sqrt(n) times more than zero-mean iid error, because
non-negative inputs sum it constructively.
"""

import numpy as np
from repro.utils.rng import make_rng


def test_coherent_bias_hurts_sqrt_n_more_than_iid():
    rng = make_rng(0)
    n = 400                                   # fan-in of a LeNet fc layer
    x = rng.uniform(0, 1, size=(256, n))      # non-negative activations
    rms = 10.0

    iid = rng.normal(0, rms, size=n)
    coherent = np.full(n, rms)                # same RMS, all positive

    iid_out = np.abs(x @ iid)
    coh_out = np.abs(x @ coherent)
    ratio = coh_out.mean() / iid_out.mean()
    # Theory: E|x.b| ~ mu_x * n * rms vs E|x.e| ~ sigma-ish * sqrt(n) * rms.
    assert ratio > np.sqrt(n) / 4


def test_vawo_solutions_have_no_coherent_column_bias():
    """End-to-end: the shipped VAWO never leaves group-coherent bias
    above its tolerance, so column outputs stay centred."""
    from repro.core.offsets import OffsetPlan
    from repro.core.vawo import run_vawo
    from repro.device.cell import SLC
    from repro.device.lut import DeviceModel, build_lut_analytic
    from repro.device.variation import VariationModel

    rng = make_rng(1)
    plan = OffsetPlan(128, 8, 16)
    ntw = np.clip(np.round(rng.normal(128, 30, size=(128, 8))),
                  0, 255).astype(np.int64)
    lut = build_lut_analytic(DeviceModel(SLC, VariationModel(0.5), n_bits=8))
    res = run_vawo(ntw, np.ones((128, 8)), lut, plan, use_complement=True,
                   bias_tolerance=2.0)
    comp = plan.expand(res.complement.astype(float)).astype(bool)
    e_v = lut.mean[res.ctw] + plan.expand(res.registers)
    e_nrw = np.where(comp, 255 - e_v, e_v)
    bias = e_nrw - ntw
    # Expected column bias: the mean over each column is tiny compared
    # with the weight scale.
    assert np.abs(bias.mean(axis=0)).max() < 2.0
    assert np.abs(bias).max() <= 2.0 + 1e-9
