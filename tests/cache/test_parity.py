"""The cache's core guarantee: cached and uncached runs are bit-identical.

Three deployments of the same trained model at the same seed — one with
caching disabled (``REPRO_CACHE=0``), one against a cold store, one
against the now-warm store — must agree bit-for-bit on every prepared
layer and on every Monte-Carlo trial accuracy, serial or ``jobs=2``.
The config deliberately exercises every seeded stage (Monte-Carlo LUT,
stuck-at faults, gradient estimation) because those are exactly the
stages where a careless cache would consume parent-stream randomness
differently between hit and miss.
"""

import numpy as np
import pytest

from repro.cache import CacheStore
from repro.core import DeployConfig, Deployer
from repro.eval.accuracy import evaluate_deployment


def _config():
    # sigma high enough that trial accuracies genuinely vary even under
    # VAWO* — identical results must come from identical streams.
    return DeployConfig.from_method(
        "vawo*", sigma=2.5, granularity=8,
        lut_source="monte_carlo", lut_k_sets=4, lut_j_cycles=4,
        saf_rates=(0.05, 0.05))


def _layer_state(deployer):
    """Every array the pipeline prepared, flattened for comparison."""
    out = {}
    out["lut.mean"] = deployer.lut.mean
    out["lut.var"] = deployer.lut.var
    for prep in deployer.layers:
        out[f"{prep.path}.ntw"] = prep.ntw
        out[f"{prep.path}.scale"] = np.float64(prep.scale)
        out[f"{prep.path}.zero_point"] = np.int64(prep.zero_point)
        if prep.grads is not None:
            out[f"{prep.path}.grads"] = prep.grads
        if prep.assignment is not None:
            out[f"{prep.path}.ctw"] = prep.assignment.ctw
            out[f"{prep.path}.registers"] = prep.assignment.registers
            out[f"{prep.path}.complement"] = prep.assignment.complement
    return out


def _assert_same_state(a, b):
    assert set(a) == set(b)
    for name in a:
        assert np.array_equal(np.asarray(a[name]), np.asarray(b[name])), name


@pytest.fixture
def deployments(trained_tiny_mlp, blob_data, tmp_path, monkeypatch):
    """(uncached, cold-cache, warm-cache) deployers at one seed."""
    store = CacheStore(tmp_path / "cache")
    monkeypatch.setenv("REPRO_CACHE", "0")
    uncached = Deployer(trained_tiny_mlp, blob_data, _config(), rng=11)
    cold = Deployer(trained_tiny_mlp, blob_data, _config(), rng=11,
                    cache=store)
    warm = Deployer(trained_tiny_mlp, blob_data, _config(), rng=11,
                    cache=store)
    return uncached, cold, warm, store


class TestDeploymentParity:
    def test_layer_state_bitwise_identical(self, deployments):
        uncached, cold, warm, store = deployments
        assert len(store.artifacts()) > 0         # the cache was used
        _assert_same_state(_layer_state(uncached), _layer_state(cold))
        _assert_same_state(_layer_state(uncached), _layer_state(warm))

    def test_trial_results_bitwise_identical(self, deployments, blob_data):
        uncached, cold, warm, _ = deployments
        base = evaluate_deployment(uncached, blob_data, n_trials=3,
                                   rng=5, jobs=1)
        assert len(set(base.accuracies)) > 1      # trials genuinely vary
        for deployer in (cold, warm):
            res = evaluate_deployment(deployer, blob_data, n_trials=3,
                                      rng=5, jobs=1)
            assert res.accuracies == base.accuracies

    def test_warm_parallel_matches_uncached_serial(self, deployments,
                                                   blob_data):
        """Cache and broadcast compose: warm + jobs=2 == uncached + serial."""
        uncached, _, warm, _ = deployments
        serial = evaluate_deployment(uncached, blob_data, n_trials=3,
                                     rng=5, jobs=1)
        par = evaluate_deployment(warm, blob_data, n_trials=3,
                                  rng=5, jobs=2)
        assert par.accuracies == serial.accuracies

    def test_parent_stream_advances_identically(self, trained_tiny_mlp,
                                                blob_data, tmp_path,
                                                monkeypatch):
        """A hit consumes exactly the randomness a miss consumes.

        Deploy twice from one shared Generator — cold then warm. If the
        warm construction skipped a ``derive_seed`` draw, the *next*
        draw from the parent stream would shift.
        """
        from repro.utils.rng import make_rng
        store = CacheStore(tmp_path / "cache")
        monkeypatch.setenv("REPRO_CACHE", "0")

        def next_draw(cache):
            rng = make_rng(42)
            Deployer(trained_tiny_mlp, blob_data, _config(), rng=rng,
                     cache=cache)
            return rng.integers(0, 2**31)

        uncached = next_draw(None)
        cold = next_draw(store)
        warm = next_draw(store)
        assert uncached == cold == warm
