"""Stage-key derivation: every ingredient must move the key."""

import numpy as np
import pytest

from repro.cache import (STAGE_VERSIONS, digest_array, digest_arrays,
                         fingerprint, stage_key)


class TestDigestArray:
    def test_value_sensitivity(self):
        a = np.arange(6, dtype=np.float64)
        b = a.copy()
        b[3] += 1e-12
        assert digest_array(a) != digest_array(b)

    def test_dtype_sensitivity(self):
        a = np.arange(6, dtype=np.float64)
        assert digest_array(a) != digest_array(a.astype(np.float32))

    def test_shape_sensitivity(self):
        a = np.arange(6, dtype=np.float64)
        assert digest_array(a) != digest_array(a.reshape(2, 3))

    def test_layout_insensitivity(self):
        """A transposed view digests like its contiguous copy."""
        a = np.arange(12, dtype=np.float64).reshape(3, 4).T
        assert not a.flags.c_contiguous
        assert digest_array(a) == digest_array(np.ascontiguousarray(a))


class TestDigestArrays:
    def test_order_independent_name_sensitive(self):
        u, v = np.arange(3.0), np.arange(4.0)
        assert digest_arrays({"u": u, "v": v}) == \
            digest_arrays({"v": v, "u": u})
        assert digest_arrays({"u": u, "v": v}) != \
            digest_arrays({"u": u, "w": v})


class TestFingerprint:
    def test_type_distinctions(self):
        # bool/int/float/str of "the same" value must not collide.
        prints = {fingerprint(v) for v in (True, 1, 1.0, "1")}
        assert len(prints) == 4

    def test_float_full_precision(self):
        assert fingerprint(0.1) != fingerprint(0.1 + 1e-16)
        assert fingerprint(np.float64(0.5)) == fingerprint(0.5)

    def test_nested_containers(self):
        a = fingerprint({"m": 16, "pwt": (1, 2.5, None)})
        b = fingerprint({"m": 16, "pwt": (1, 2.5, 0)})
        assert a != b
        assert fingerprint({"x": 1, "y": 2}) == fingerprint({"y": 2, "x": 1})

    def test_rejects_unknown_types_loudly(self):
        from repro.utils.rng import make_rng
        with pytest.raises(TypeError, match="cannot fingerprint"):
            fingerprint(object())
        with pytest.raises(TypeError):
            # RNG generators are the canonical non-ingredient (DESIGN.md).
            fingerprint({"rng": make_rng(0)})


class TestStageKey:
    def test_component_value_and_name_sensitivity(self):
        base = stage_key("lut", bits=2, sigma=0.4)
        assert stage_key("lut", bits=2, sigma=0.5) != base
        assert stage_key("lut", nbits=2, sigma=0.4) != base
        assert stage_key("lut", sigma=0.4, bits=2) == base    # kwarg order

    def test_stage_salt_separates_stages(self):
        assert stage_key("lut", x=1) != stage_key("quantize", x=1)

    def test_version_bump_invalidates(self, monkeypatch):
        before = stage_key("lut", x=1)
        monkeypatch.setitem(STAGE_VERSIONS, "lut", STAGE_VERSIONS["lut"] + 1)
        assert stage_key("lut", x=1) != before

    def test_array_components(self):
        w = np.linspace(-1, 1, 8)
        assert stage_key("quantize", weights=w) != \
            stage_key("quantize", weights=w * 1.0000001)
        assert stage_key("quantize", weights=w) == \
            stage_key("quantize", weights=w.copy())

    def test_is_hex64(self):
        key = stage_key("vawo", seed=7)
        assert len(key) == 64 and set(key) <= set("0123456789abcdef")
