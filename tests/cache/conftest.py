"""Fixtures for the artifact-cache tests."""

from __future__ import annotations

import pytest

import repro.obs as obs
from repro.obs import runtime


@pytest.fixture
def obs_on():
    """Enable obs collection with empty state; restore on exit."""
    was_active = runtime.enabled()
    obs.reset()
    runtime.enable()
    yield obs
    runtime._STATE.active = was_active
    obs.reset()
