"""CacheStore contract: atomicity, corruption recovery, LRU eviction."""

import json
import multiprocessing
import os

import numpy as np
import pytest

from repro.cache import CacheStore, stage_key
from repro.cache.store import resolve_store
from repro.obs import metrics as obs_metrics
from repro.utils.rng import make_rng
from repro.utils.serialization import SerializationError

KEY = stage_key("lut", probe=1)
KEY2 = stage_key("lut", probe=2)


@pytest.fixture
def store(tmp_path):
    return CacheStore(tmp_path / "cache")


def family(seed=0, n=16):
    rng = make_rng(seed)
    return {"mean": rng.normal(size=n),
            "var": rng.random(n).astype(np.float32)}


class TestRoundTrip:
    def test_put_get_bit_identical(self, store):
        arrays = family()
        store.put(KEY, arrays, stage="lut")
        back = store.get(KEY, stage="lut")
        assert set(back) == {"mean", "var"}
        for name in arrays:
            assert back[name].dtype == arrays[name].dtype
            assert np.array_equal(back[name], arrays[name])

    def test_miss_returns_none(self, store):
        assert store.get(KEY) is None
        assert not store.contains(KEY)

    def test_fetch_computes_once(self, store):
        calls = []

        def compute():
            calls.append(1)
            return family()

        first = store.fetch(KEY, compute, stage="lut")
        second = store.fetch(KEY, compute, stage="lut")
        assert len(calls) == 1
        assert np.array_equal(first["mean"], second["mean"])

    def test_metadata_roundtrip(self, store):
        store.put(KEY, family(), stage="lut", metadata={"method": "vawo*"})
        meta = store.metadata(KEY)
        assert meta["stage"] == "lut" and meta["method"] == "vawo*"
        assert meta["key"] == KEY

    def test_meta_name_reserved(self, store):
        with pytest.raises(ValueError, match="reserved"):
            store.put(KEY, {"__meta__": np.zeros(1)})

    def test_keys_validated(self, store):
        with pytest.raises(ValueError, match="lowercase hex"):
            store.path_for("../../etc/passwd")


class TestCorruptionRecovery:
    def test_garbage_artifact_discarded_as_miss(self, store, obs_on):
        path = store.path_for(KEY)
        path.parent.mkdir(parents=True)
        path.write_bytes(b"this is not an npz archive")
        assert store.get(KEY, stage="lut") is None
        assert not path.exists()                  # discarded, not left
        assert obs_metrics.REGISTRY.counter_value("cache.corrupt") == 1
        assert obs_metrics.REGISTRY.counter_value("cache.misses.lut") == 1
        # The next put/get cycle works normally again.
        store.put(KEY, family(), stage="lut")
        assert store.get(KEY, stage="lut") is not None

    def test_truncated_artifact_discarded(self, store):
        store.put(KEY, family(n=512))
        path = store.path_for(KEY)
        blob = path.read_bytes()
        path.write_bytes(blob[:len(blob) // 2])
        assert store.get(KEY) is None
        assert not path.exists()

    def test_corrupt_metadata_raises_serialization_error(self, store):
        path = store.path_for(KEY)
        path.parent.mkdir(parents=True)
        path.write_bytes(b"junk")
        with pytest.raises(SerializationError):
            store.metadata(KEY)

    def test_no_temp_files_left_behind(self, store):
        store.put(KEY, family())
        leftovers = [p for p in store.directory.rglob(".tmp-*")]
        assert leftovers == []


class TestEviction:
    def put_sized(self, store, key, n, seed=0):
        store.put(key, {"data": np.zeros(n, dtype=np.uint8) + seed})

    def test_oldest_evicted_first(self, tmp_path, obs_on):
        store = CacheStore(tmp_path, max_bytes=3000)
        keys = [stage_key("lut", probe=i) for i in range(4)]
        for i, key in enumerate(keys):
            self.put_sized(store, key, 1024, seed=i)
            os.utime(store.path_for(key), (1000 + i, 1000 + i))
        # ~2 artifacts fit under the cap; the oldest must be gone and
        # the newest (just written) must survive.
        assert not store.contains(keys[0])
        assert store.contains(keys[-1])
        assert store.size_bytes() <= 3000
        assert obs_metrics.REGISTRY.counter_value("cache.evictions") >= 1

    def test_hit_refreshes_lru_rank(self, tmp_path):
        store = CacheStore(tmp_path, max_bytes=None)
        keys = [stage_key("lut", probe=i) for i in range(3)]
        self.put_sized(store, keys[0], 1024)
        artifact_bytes = store.size_bytes()
        store.max_bytes = int(2.5 * artifact_bytes)   # two fit, three don't
        self.put_sized(store, keys[1], 1024)
        for i, key in enumerate(keys[:2]):
            os.utime(store.path_for(key), (1000 + i, 1000 + i))
        assert store.get(keys[0]) is not None     # bumps keys[0]'s clock
        self.put_sized(store, keys[2], 1024)      # forces one eviction
        assert store.contains(keys[0])
        assert not store.contains(keys[1])

    def test_own_write_never_evicted(self, tmp_path):
        store = CacheStore(tmp_path, max_bytes=512)
        self.put_sized(store, KEY, 4096)          # alone exceeds the cap
        assert store.contains(KEY)

    def test_rejects_nonpositive_cap(self, tmp_path):
        with pytest.raises(ValueError, match="max_bytes"):
            CacheStore(tmp_path, max_bytes=0)


def _race_put(directory, key, seed):
    store = CacheStore(directory)
    store.put(key, family(seed=seed, n=4096), stage="lut",
              metadata={"writer": int(seed)})
    return True


class TestConcurrentWriters:
    def test_two_processes_racing_one_key(self, tmp_path):
        """Both writers succeed; exactly one intact artifact remains."""
        ctx = multiprocessing.get_context("spawn")
        procs = [ctx.Process(target=_race_put, args=(str(tmp_path), KEY, s))
                 for s in (1, 2)]
        for p in procs:
            p.start()
        for p in procs:
            p.join(timeout=120)
            assert p.exitcode == 0
        store = CacheStore(tmp_path)
        back = store.get(KEY)
        assert back is not None                   # readable, not torn
        writer = store.metadata(KEY)["writer"]
        assert writer in (1, 2)
        assert np.array_equal(back["mean"], family(seed=writer, n=4096)["mean"])
        assert len(store.artifacts()) == 1
        assert not list(store.directory.rglob(".tmp-*"))


class TestEnvResolution:
    def test_disabled_values(self, monkeypatch):
        for value in ("0", "off", "none", "disabled", " OFF "):
            monkeypatch.setenv("REPRO_CACHE", value)
            assert resolve_store() is None

    def test_env_path_wins(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE", str(tmp_path / "envcache"))
        store = resolve_store()
        assert store is not None
        assert store.directory == tmp_path / "envcache"

    def test_explicit_dir_overrides_disable(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE", "0")
        store = resolve_store(tmp_path / "explicit")
        assert store is not None and store.directory.name == "explicit"

    def test_max_mb_env(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_MAX_MB", "7")
        store = resolve_store(tmp_path / "capped")
        assert store.max_bytes == 7 * 1024 * 1024
        monkeypatch.setenv("REPRO_CACHE_MAX_MB", "banana")
        with pytest.raises(ValueError, match="REPRO_CACHE_MAX_MB"):
            resolve_store(tmp_path / "capped2")


class TestClear:
    def test_clear_removes_everything(self, store):
        store.put(KEY, family())
        store.put(KEY2, family(1))
        assert store.clear() == 2
        assert store.artifacts() == [] and store.size_bytes() == 0
