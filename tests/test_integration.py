"""End-to-end integration: the paper's story on a controlled workload.

These tests exercise the full public API surface the way the examples
and benchmarks do — train, deploy with each scheme, verify the paper's
qualitative claims — on a workload small enough for CI.
"""

import numpy as np
import pytest

from repro.arch.energy import deployment_reading_power
from repro.core import DeployConfig, Deployer, PWTConfig
from repro.core.pwt import crossbar_modules
from repro.device.cell import MLC2
from repro.eval import evaluate_deployment, ideal_accuracy
from repro.nn.trainer import evaluate_accuracy
from repro.utils.rng import make_rng


@pytest.fixture(scope="module")
def workload():
    """One trained TinyMLP shared across the integration tests."""
    from repro.nn.optim import Adam
    from repro.nn.trainer import train_classifier
    from tests.conftest import TinyMLP, make_blob_dataset

    data = make_blob_dataset(n=320, seed=0)
    model = TinyMLP(rng=make_rng(1))
    opt = Adam(model.parameters(), lr=5e-3, weight_decay=1e-4)
    train_classifier(model, data, epochs=12, batch_size=32,
                     optimizer=opt, rng=2)
    return model, data


def deploy_and_eval(workload, method, sigma=0.6, m=8, cell=None, trials=3):
    model, data = workload
    kwargs = dict(sigma=sigma, granularity=m,
                  pwt=PWTConfig(epochs=2, lr=0.5))
    if cell is not None:
        kwargs["cell"] = cell
    cfg = DeployConfig.from_method(method, **kwargs)
    deployer = Deployer(model, data, cfg, rng=0)
    return deployer, evaluate_deployment(deployer, data, n_trials=trials,
                                         rng=11).mean


class TestPaperStory:
    def test_plain_scheme_collapses(self, workload):
        _, acc = deploy_and_eval(workload, "plain", sigma=1.0)
        model, data = workload
        assert acc < evaluate_accuracy(model, data) - 0.3

    def test_full_method_recovers(self, workload):
        _, plain = deploy_and_eval(workload, "plain")
        _, full = deploy_and_eval(workload, "vawo*+pwt")
        assert full > plain + 0.2

    def test_method_ordering(self, workload):
        accs = {m: deploy_and_eval(workload, m)[1]
                for m in ("plain", "vawo*", "vawo*+pwt")}
        assert accs["plain"] <= accs["vawo*"] + 0.05
        assert accs["vawo*"] <= accs["vawo*+pwt"] + 0.05

    def test_finer_granularity_helps(self, workload):
        _, fine = deploy_and_eval(workload, "vawo*+pwt", m=8)
        _, coarse = deploy_and_eval(workload, "vawo*+pwt", m=64)
        assert fine >= coarse - 0.05

    def test_accuracy_decreases_with_sigma(self, workload):
        accs = [deploy_and_eval(workload, "vawo*", sigma=s)[1]
                for s in (0.2, 1.0)]
        assert accs[0] >= accs[1] - 0.02

    def test_mlc_more_sensitive_than_slc(self, workload):
        _, slc = deploy_and_eval(workload, "plain", sigma=0.5)
        _, mlc = deploy_and_eval(workload, "plain", sigma=0.5, cell=MLC2)
        assert mlc <= slc + 0.1

    def test_vawo_star_reduces_reading_power(self, workload):
        deployer, _ = deploy_and_eval(workload, "vawo*", cell=MLC2, trials=1)
        assert deployment_reading_power(deployer) < 1.0

    def test_combined_near_ideal_at_moderate_sigma(self, workload):
        deployer, acc = deploy_and_eval(workload, "vawo*+pwt", sigma=0.4)
        model, data = workload
        ideal = ideal_accuracy(deployer, data)
        assert acc >= ideal - 0.1


class TestBitAccurateConsistency:
    def test_deployed_layer_matches_engine(self, workload):
        """The fast path and the cycle-accurate engine agree end to end."""
        model, data = workload
        cfg = DeployConfig.from_method("vawo*", sigma=0.5, granularity=8)
        deployer = Deployer(model, data, cfg, rng=0)
        deployed = deployer.program(rng=3)
        layer = crossbar_modules(deployed)[0]
        x = data.images[:4].reshape(4, -1)
        from repro.nn.tensor import Tensor
        fast = layer(Tensor(x)).data
        # The engine models the crossbar datapath; the bias is digital
        # and added outside it.
        accurate = layer.make_engine().forward(x)
        if layer.bias is not None:
            accurate = accurate + layer.bias
        np.testing.assert_allclose(fast, accurate, atol=1e-9)


class TestWriteVerifyContrast:
    def test_digital_offset_uses_single_write(self, workload):
        """The paper's motivation: write-verify costs many pulses for the
        same variation the digital offset absorbs with one write."""
        from repro.device import (DeviceModel, VariationModel, write_verify)
        from repro.device.cell import SLC

        device = DeviceModel(SLC, VariationModel(0.5), n_bits=8)
        values = make_rng(0).integers(0, 256, size=500)
        res = write_verify(device, values, rel_tolerance=0.1, rng=1)
        assert res.pulses.mean() > 2.0   # repeated programming is costly
