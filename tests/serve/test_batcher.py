"""Micro-batcher contracts: bitwise determinism, shedding, deadlines."""

from __future__ import annotations

import asyncio
import itertools

import numpy as np
import pytest

from repro.serve import (DeadlineExceededError, MicroBatcher, QueueFullError,
                         pad_batch)


def _run(coro):
    return asyncio.run(coro)


class TestPadBatch:
    def test_pads_with_zero_rows(self):
        x = np.arange(6, dtype=np.float64).reshape(2, 3)
        padded = pad_batch(x, 5)
        assert padded.shape == (5, 3)
        assert np.array_equal(padded[:2], x)
        assert not padded[2:].any()

    def test_exact_size_is_identity(self):
        x = np.ones((3, 2))
        assert pad_batch(x, 3) is x

    def test_oversized_batch_rejected(self):
        with pytest.raises(ValueError, match="exceeds pad size"):
            pad_batch(np.ones((4, 2)), 3)


class TestDeterminism:
    """The core serving claim, on the real BLAS-backed forward path:
    outputs are bitwise identical however requests coalesce."""

    @pytest.fixture(scope="class")
    def reference(self, tiny_service):
        """Each sample served alone through max_batch-padded dispatch."""
        x = tiny_service.prepare().test_images[:8]

        async def serve_alone():
            outs = []
            batcher = tiny_service.make_batcher()
            batcher.start()
            for i in range(x.shape[0]):
                outs.append(await batcher.submit(x[i:i + 1]))
            await batcher.drain()
            return outs

        return x, _run(serve_alone())

    @pytest.mark.parametrize("max_batch", [1, 2, 8])
    def test_coalesced_equals_alone(self, tiny_service, reference,
                                    max_batch):
        x, alone_default = reference

        async def serve_alone(mb):
            outs = []
            batcher = MicroBatcher(tiny_service.run_batch, max_batch=mb,
                                   max_wait_ms=1.0)
            batcher.start()
            for i in range(x.shape[0]):
                outs.append(await batcher.submit(x[i:i + 1]))
            await batcher.drain()
            return outs

        async def serve_concurrent(mb):
            batcher = MicroBatcher(tiny_service.run_batch, max_batch=mb,
                                   max_wait_ms=5.0)
            batcher.start()
            outs = await asyncio.gather(
                *[batcher.submit(x[i:i + 1]) for i in range(x.shape[0])])
            await batcher.drain()
            return outs, batcher.n_batches

        alone = _run(serve_alone(max_batch))
        together, n_batches = _run(serve_concurrent(max_batch))
        for i in range(x.shape[0]):
            assert np.array_equal(alone[i], together[i]), \
                f"row {i} differs at max_batch={max_batch}"
        if max_batch == 8:
            # all 8 requests must actually have coalesced
            assert n_batches == 1
        # and at a *different* pad size the per-request results still
        # only depend on the request itself
        if max_batch != 4:
            return
        for i in range(x.shape[0]):
            assert np.array_equal(alone_default[i], alone[i])

    @pytest.mark.parametrize("order", list(itertools.permutations(range(4))))
    def test_arrival_order_irrelevant(self, tiny_service, reference, order):
        x, alone = reference

        async def serve_in_order():
            batcher = tiny_service.make_batcher()
            batcher.start()
            tasks = {}
            for i in order:
                tasks[i] = asyncio.ensure_future(batcher.submit(x[i:i + 1]))
            results = {i: await t for i, t in tasks.items()}
            await batcher.drain()
            return results

        results = _run(serve_in_order())
        for i in range(4):
            assert np.array_equal(results[i], alone[i]), \
                f"row {i} depends on arrival order {order}"

    def test_large_request_split_and_reassembled(self, tiny_service,
                                                 reference):
        x, alone = reference

        async def one_big():
            batcher = tiny_service.make_batcher()   # max_batch=4
            batcher.start()
            out = await batcher.submit(x)           # 8 samples -> 2 chunks
            batches = batcher.n_batches
            await batcher.drain()
            return out, batches

        out, batches = _run(one_big())
        assert out.shape[0] == x.shape[0]
        assert batches == 2
        for i in range(x.shape[0]):
            assert np.array_equal(out[i:i + 1], alone[i])


class TestAdmissionControl:
    def test_queue_full_sheds(self):
        async def scenario():
            # A wide-open coalescing window (max_batch far away, long
            # max_wait) keeps accepted entries parked in the queue.
            batcher = MicroBatcher(lambda b: b * 2.0, max_batch=8,
                                   max_wait_ms=500.0, queue_limit=2)
            batcher.start()
            x = np.ones((1, 3))
            pending = [asyncio.ensure_future(batcher.submit(x))
                       for _ in range(2)]
            await asyncio.sleep(0.01)
            assert batcher.queued == 2
            with pytest.raises(QueueFullError):
                await batcher.submit(x)
            assert batcher.n_shed == 1
            assert batcher.n_requests == 2
            # the parked entries were accepted and still complete
            await batcher.drain()
            for out in await asyncio.gather(*pending):
                assert np.array_equal(out, x * 2.0)

        _run(scenario())

    def test_queue_limit_is_all_or_nothing(self):
        async def scenario():
            batcher = MicroBatcher(lambda b: b, max_batch=1, queue_limit=2)
            # 3 chunks > limit 2, with an idle loop: reject immediately.
            with pytest.raises(QueueFullError):
                await batcher.submit(np.ones((3, 2)))
            assert batcher.queued == 0
            assert batcher.n_shed == 1
            assert batcher.n_requests == 0

        _run(scenario())

    def test_deadline_expires_in_queue(self):
        async def scenario():
            # A long coalescing window holds the entry queued well past
            # its 1 ms deadline; dispatch must expire it, not serve it.
            batcher = MicroBatcher(lambda b: b * 2.0, max_batch=4,
                                   max_wait_ms=80.0)
            batcher.start()
            with pytest.raises(DeadlineExceededError):
                await batcher.submit(np.ones((1, 2)), deadline_ms=1.0)
            assert batcher.n_expired == 1
            assert batcher.n_batches == 0
            # the loop survives and still serves fresh work
            out = await batcher.submit(np.ones((1, 2)), deadline_ms=5000.0)
            assert np.array_equal(out, np.full((1, 2), 2.0))
            await batcher.drain()

        _run(scenario())

    def test_zero_deadline_is_already_expired(self):
        async def scenario():
            # deadline_ms=0 means "already expired", not "no deadline".
            batcher = MicroBatcher(lambda b: b, max_batch=4,
                                   max_wait_ms=0.0)
            batcher.start()
            with pytest.raises(DeadlineExceededError):
                await batcher.submit(np.ones((1, 2)), deadline_ms=0.0)
            assert batcher.n_expired == 1
            assert batcher.n_batches == 0
            await batcher.drain()

        _run(scenario())

    def test_failed_batch_propagates_and_loop_survives(self):
        calls = {"n": 0}

        def flaky(batch):
            calls["n"] += 1
            if calls["n"] == 1:
                raise RuntimeError("transient device fault")
            return batch + 1.0

        async def scenario():
            batcher = MicroBatcher(flaky, max_batch=2, max_wait_ms=0.0)
            batcher.start()
            with pytest.raises(RuntimeError, match="transient device"):
                await batcher.submit(np.zeros((1, 2)))
            out = await batcher.submit(np.zeros((1, 2)))
            assert np.array_equal(out, np.ones((1, 2)))
            await batcher.drain()

        _run(scenario())

    def test_drain_serves_queued_then_rejects(self):
        async def scenario():
            batcher = MicroBatcher(lambda b: b * 3.0, max_batch=2,
                                   max_wait_ms=50.0)
            batcher.start()
            pending = [asyncio.ensure_future(
                batcher.submit(np.full((1, 2), float(i))))
                for i in range(5)]
            await asyncio.sleep(0)          # let entries enqueue
            await batcher.drain()           # must serve all 5 first
            outs = await asyncio.gather(*pending)
            for i, out in enumerate(outs):
                assert np.array_equal(out, np.full((1, 2), 3.0 * i))
            with pytest.raises(QueueFullError, match="draining"):
                await batcher.submit(np.ones((1, 2)))

        _run(scenario())

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            MicroBatcher(lambda b: b, max_batch=0)
        with pytest.raises(ValueError):
            MicroBatcher(lambda b: b, max_wait_ms=-1.0)
        with pytest.raises(ValueError):
            MicroBatcher(lambda b: b, queue_limit=0)

    def test_empty_request_rejected(self):
        async def scenario():
            batcher = MicroBatcher(lambda b: b)
            with pytest.raises(ValueError, match="at least one sample"):
                await batcher.submit(np.ones((0, 2)))

        _run(scenario())
