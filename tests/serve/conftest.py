"""Shared serving fixtures: a deployed TinyMLP behind an explicit store.

The service fixtures are module-scoped — programming even a TinyMLP
deployment costs seconds, and every test here only *reads* the
programmed model — so the registry gets an explicit module-lifetime
:class:`CacheStore` instead of the function-scoped ``REPRO_CACHE``
isolation the global conftest provides.
"""

from __future__ import annotations

import pytest

from repro.cache import CacheStore
from repro.data.loaders import Dataset
from repro.eval.experiments import Workload
from repro.nn.optim import Adam
from repro.nn.trainer import evaluate_accuracy, train_classifier
from repro.serve import InferenceService, ModelRegistry, ServeConfig
from repro.utils.rng import make_rng

from ..conftest import TinyMLP, make_blob_dataset


def build_tiny_workload() -> Workload:
    """Deterministic TinyMLP workload (fixed seeds throughout), so a
    fresh process reconstructs the bit-identical model and data."""
    data = make_blob_dataset(320)
    train = Dataset(data.images[:240], data.labels[:240])
    test = Dataset(data.images[240:], data.labels[240:])
    model = TinyMLP(rng=make_rng(1))
    opt = Adam(model.parameters(), lr=5e-3, weight_decay=1e-4)
    train_classifier(model, train, epochs=12, batch_size=32,
                     optimizer=opt, rng=make_rng(2))
    return Workload(name="tiny", model=model, train=train, test=test,
                    float_accuracy=evaluate_accuracy(model, test))


def tiny_serve_config(**overrides) -> ServeConfig:
    """A fast deployment config ("vawo*" skips PWT's training loop)."""
    base = dict(workload="tiny", preset="quick", method="vawo*",
                sigma=0.3, granularity=8, seed=0,
                max_batch=4, max_wait_ms=1.0, queue_limit=64)
    base.update(overrides)
    return ServeConfig(**base)


@pytest.fixture(scope="module")
def tiny_workload():
    return build_tiny_workload()


@pytest.fixture(scope="module")
def module_store(tmp_path_factory):
    return CacheStore(tmp_path_factory.mktemp("serve-store"))


@pytest.fixture(scope="module")
def tiny_service(tiny_workload, module_store):
    """A prepared (programmed) service over the TinyMLP deployment."""
    service = InferenceService(tiny_serve_config(),
                               registry=ModelRegistry(module_store),
                               workload=tiny_workload)
    service.prepare()
    return service
