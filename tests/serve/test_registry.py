"""Registry round-trips: programmed state in/out of the artifact cache."""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import numpy as np

from repro.cache import CacheStore
from repro.core import DeployConfig, Deployer
from repro.core.pwt import crossbar_modules
from repro.nn.trainer import evaluate_accuracy
from repro.serve import InferenceService, ModelRegistry, serve_program_key
from repro.utils.rng import spawn_seeds

from .conftest import build_tiny_workload, tiny_serve_config


def _deployer(workload, **overrides):
    fields = dict(sigma=0.3, granularity=8)
    fields.update(overrides)
    config = DeployConfig.from_method("vawo*", **fields)
    return Deployer(workload.model, workload.train, config, rng=10)


class TestKey:
    def test_key_is_deterministic(self, tiny_workload):
        d = _deployer(tiny_workload)
        seed = spawn_seeds(20, 1)[0]
        assert serve_program_key(d, 10, seed) == \
            serve_program_key(d, 10, seed)

    def test_key_tracks_program_seed(self, tiny_workload):
        d = _deployer(tiny_workload)
        a, b = spawn_seeds(20, 2)
        assert serve_program_key(d, 10, a) != serve_program_key(d, 10, b)
        assert serve_program_key(d, 10, 7) != serve_program_key(d, 10, 8)

    def test_key_tracks_config(self, tiny_workload):
        seed = spawn_seeds(20, 1)[0]
        a = serve_program_key(_deployer(tiny_workload), 10, seed)
        b = serve_program_key(_deployer(tiny_workload, sigma=0.4), 10, seed)
        c = serve_program_key(_deployer(tiny_workload, granularity=4),
                              10, seed)
        assert len({a, b, c}) == 3


class TestBackendParity:
    """``--backend accel`` must serve the exact artifacts — and
    accuracies — the default backend serves."""

    def test_accel_and_vectorized_share_the_key(self, tiny_workload):
        from repro.backend import use_backend

        d = _deployer(tiny_workload)
        seed = spawn_seeds(20, 1)[0]
        with use_backend("vectorized"):
            key_vec = serve_program_key(d, 10, seed)
        with use_backend("accel"):
            key_acc = serve_program_key(d, 10, seed)
        with use_backend("reference"):
            key_ref = serve_program_key(d, 10, seed)
        # accel and vectorized are bitwise-identical on the deployed
        # fast-float path (same cache_tag) — same key, warm starts
        # cross over; reference keeps its own artifact space.
        assert key_acc == key_vec
        assert key_ref != key_vec

    def test_accel_warm_starts_vectorized_artifact_bitwise(
            self, tiny_workload, tmp_path):
        from repro.backend import use_backend
        from repro.nn.tensor import Tensor

        registry = ModelRegistry(CacheStore(tmp_path / "store"))
        seed = spawn_seeds(20, 1)[0]
        with use_backend("vectorized"):
            model, key, warm = registry.get_or_program(
                _deployer(tiny_workload), 10, seed)
            assert not warm
            acc_vec = evaluate_accuracy(model, tiny_workload.test)
        with use_backend("accel"):
            model2, key2, warm2 = registry.get_or_program(
                _deployer(tiny_workload), 10, seed)
            assert warm2 and key2 == key
            acc_accel = evaluate_accuracy(model2, tiny_workload.test)
            x = tiny_workload.test.images[:4]
            outputs_accel = model2(Tensor(x)).data
        assert acc_accel == acc_vec
        assert np.array_equal(outputs_accel, model(Tensor(x)).data)


class TestRoundTrip:
    def test_store_then_load_bitwise(self, tiny_workload, tmp_path):
        registry = ModelRegistry(CacheStore(tmp_path / "store"))
        deployer = _deployer(tiny_workload)
        seed = spawn_seeds(20, 1)[0]
        model, key, warm = registry.get_or_program(deployer, 10, seed)
        assert not warm

        # A second deployer (fresh preparation) must load, not program.
        deployer2 = _deployer(tiny_workload)
        model2, key2, warm2 = registry.get_or_program(deployer2, 10, seed)
        assert warm2 and key2 == key

        for a, b in zip(crossbar_modules(model), crossbar_modules(model2)):
            assert np.array_equal(a.cells, b.cells)
            assert np.array_equal(a.crw, b.crw)
            assert np.array_equal(a.offsets.data, b.offsets.data)
            assert np.array_equal(a.complement_mask, b.complement_mask)
            assert np.array_equal(a._sign, b._sign)
            assert np.array_equal(a._const, b._const)
        for (na, va), (nb, vb) in zip(model.state_dict().items(),
                                      model2.state_dict().items()):
            assert na == nb and np.array_equal(va, vb)

        acc = evaluate_accuracy(model, tiny_workload.test)
        acc2 = evaluate_accuracy(model2, tiny_workload.test)
        assert acc == acc2

    def test_forward_identical_after_load(self, tiny_workload, tmp_path):
        from repro.nn.tensor import Tensor

        registry = ModelRegistry(CacheStore(tmp_path / "store"))
        seed = spawn_seeds(20, 1)[0]
        model, _, _ = registry.get_or_program(
            _deployer(tiny_workload), 10, seed)
        model2, _, warm = registry.get_or_program(
            _deployer(tiny_workload), 10, seed)
        assert warm
        x = tiny_workload.test.images[:4]
        assert np.array_equal(model(Tensor(x)).data, model2(Tensor(x)).data)

    def test_layer_mismatch_is_a_miss(self, tiny_workload, tmp_path):
        from ..conftest import TinyMLP
        from repro.eval.experiments import Workload
        from repro.utils.rng import make_rng

        registry = ModelRegistry(CacheStore(tmp_path / "store"))
        seed = spawn_seeds(20, 1)[0]
        deployer = _deployer(tiny_workload)
        _, key, _ = registry.get_or_program(deployer, 10, seed)

        # A deployer over a *different architecture* cannot consume the
        # stored artifact: the load degrades to a miss, never a crash.
        other_model = TinyMLP(rng=make_rng(3), hidden=12)
        other = Workload(name="tiny12", model=other_model,
                         train=tiny_workload.train, test=tiny_workload.test,
                         float_accuracy=0.0)
        assert registry.load_deployment(key, _deployer(other)) is None

    def test_disabled_store_always_programs(self, tiny_workload,
                                            monkeypatch):
        monkeypatch.setenv("REPRO_CACHE", "0")
        registry = ModelRegistry()     # active_store() resolves to None
        assert registry.store is None
        seed = spawn_seeds(20, 1)[0]
        _, _, warm = registry.get_or_program(
            _deployer(tiny_workload), 10, seed)
        assert not warm


_FRESH_PROCESS_SCRIPT = """
import sys
from pathlib import Path

sys.path.insert(0, sys.argv[2])          # repo root (for the tests pkg)
from tests.serve.conftest import build_tiny_workload, tiny_serve_config

from repro.cache import CacheStore
from repro.nn.trainer import evaluate_accuracy
from repro.serve import InferenceService, ModelRegistry

store = CacheStore(Path(sys.argv[1]))
service = InferenceService(tiny_serve_config(),
                           registry=ModelRegistry(store),
                           workload=build_tiny_workload())
prepared = service.prepare()
acc = evaluate_accuracy(prepared.model, service._workload.test)
sys.stdout.write(
    f"{prepared.model_key} {int(prepared.warm_start)} {acc!r}\\n")
"""


class TestFreshProcess:
    def test_round_trip_across_processes(self, tiny_workload, tmp_path):
        """program -> store by content hash -> load in a *fresh process*
        -> identical key, warm start, identical accuracy."""
        store_dir = tmp_path / "shared-store"
        service = InferenceService(
            tiny_serve_config(), registry=ModelRegistry(CacheStore(store_dir)),
            workload=tiny_workload)
        prepared = service.prepare()
        assert not prepared.warm_start
        acc = evaluate_accuracy(prepared.model, tiny_workload.test)

        repo_root = Path(__file__).resolve().parents[2]
        env = dict(os.environ)
        env.pop("REPRO_CACHE", None)    # explicit store wins anyway
        env["PYTHONPATH"] = os.pathsep.join(
            [str(repo_root / "src")]
            + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else []))
        out = subprocess.run(
            [sys.executable, "-c", _FRESH_PROCESS_SCRIPT,
             str(store_dir), str(repo_root)],
            capture_output=True, text=True, env=env, check=True,
            timeout=600)
        key, warm, fresh_acc = out.stdout.split()
        assert key == prepared.model_key
        assert warm == "1", f"fresh process re-programmed: {out.stdout}"
        assert float(fresh_acc) == acc

    def test_workload_reconstruction_is_deterministic(self, tiny_workload):
        rebuilt = build_tiny_workload()
        for (na, va), (nb, vb) in zip(
                tiny_workload.model.state_dict().items(),
                rebuilt.model.state_dict().items()):
            assert na == nb and np.array_equal(va, vb)
        assert np.array_equal(tiny_workload.test.images,
                              rebuilt.test.images)
