"""Loopback server integration: protocol, admission control, drain."""

from __future__ import annotations

import asyncio
import threading
import time
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro.serve import (InferenceService, ServeClient, ServeRequestError,
                         ServeServer, read_endpoint_file, wait_for_server)

from .conftest import tiny_serve_config


def _start(service):
    """Run a server on a daemon thread; return (server, host, port,
    thread)."""
    ready = threading.Event()
    endpoint = {}

    def on_ready(host, port):
        endpoint["host"], endpoint["port"] = host, port
        ready.set()

    server = ServeServer(service, port=0, on_ready=on_ready)
    thread = threading.Thread(target=lambda: asyncio.run(server.run()),
                              daemon=True)
    thread.start()
    assert ready.wait(timeout=120), "server did not come up"
    return server, endpoint["host"], endpoint["port"], thread


@pytest.fixture
def running_server(tiny_service):
    server, host, port, thread = _start(tiny_service)
    wait_for_server(host, port, timeout_s=30)
    yield server, host, port
    server.request_stop()
    thread.join(timeout=30)
    assert not thread.is_alive(), "server thread failed to drain"


class TestProtocol:
    def test_ping_and_stats(self, running_server):
        _, host, port = running_server
        with ServeClient(host, port) as client:
            pong = client.ping()
            assert pong["ok"] and len(pong["model_key"]) == 64
            stats = client.stats()
            assert stats["max_batch"] == 4
            assert stats["test_size"] == 80

    def test_infer_by_index_includes_labels(self, running_server,
                                            tiny_service):
        _, host, port = running_server
        with ServeClient(host, port) as client:
            r = client.infer(indices=[0, 1, 2])
        assert len(r["outputs"]) == 3
        assert r["labels"] == tiny_service.labels_for([0, 1, 2])
        assert r["predictions"] == \
            [int(np.argmax(row)) for row in r["outputs"]]

    def test_wire_roundtrip_is_bitwise(self, running_server, tiny_service):
        """JSON float64 repr round-trips exactly: the logits a client
        decodes equal the server-side forward bit for bit."""
        _, host, port = running_server
        x = tiny_service.prepare().test_images[:2]

        async def direct():
            batcher = tiny_service.make_batcher()
            batcher.start()
            out = await batcher.submit(x)
            await batcher.drain()
            return out

        expected = asyncio.run(direct())
        with ServeClient(host, port) as client:
            served = np.array(client.infer(indices=[0, 1])["outputs"])
        assert np.array_equal(served, expected)

    def test_infer_raw_inputs(self, running_server, tiny_service):
        _, host, port = running_server
        sample = tiny_service.prepare().test_images[0]
        with ServeClient(host, port) as client:
            r = client.infer(inputs=[sample.tolist()])
        assert "labels" not in r
        assert len(r["outputs"]) == 1

    def test_error_codes(self, running_server):
        _, host, port = running_server
        with ServeClient(host, port) as client:
            with pytest.raises(ServeRequestError) as exc:
                client.infer(indices=[10_000])
            assert exc.value.code == 400
            with pytest.raises(ServeRequestError) as exc:
                client.infer(inputs=[[1.0, 2.0]])
            assert exc.value.code == 400
            with pytest.raises(ServeRequestError) as exc:
                client.request({"op": "selfdestruct"})
            assert exc.value.code == 400
            # a non-numeric deadline is a 400, never a dropped socket
            with pytest.raises(ServeRequestError) as exc:
                client.request({"op": "infer", "indices": [0],
                                "deadline_ms": "soon"})
            assert exc.value.code == 400
            # the connection survives every error response
            assert client.ping()["ok"]

    def test_malformed_json_gets_400(self, running_server):
        _, host, port = running_server
        client = ServeClient(host, port)
        try:
            client._io.write(b"{not json}\n")
            client._io.flush()
            import json as json_mod
            response = json_mod.loads(client._io.readline())
            assert response["ok"] is False and response["code"] == 400
        finally:
            client.close()

    def test_concurrent_clients_batch_and_agree(self, running_server,
                                                tiny_service):
        _, host, port = running_server
        labels = tiny_service.prepare().test_labels

        def one(i):
            with ServeClient(host, port) as client:
                r = client.infer(indices=[i])
                return r["predictions"][0], r["labels"][0]

        with ThreadPoolExecutor(8) as pool:
            results = list(pool.map(one, range(32)))
        for i, (_, label) in enumerate(results):
            assert label == int(labels[i])
        acc = sum(p == label for p, label in results) / len(results)
        assert acc > 0.5    # the deployment actually classifies


class TestAdmission:
    def test_server_sheds_with_429(self, tiny_service):
        # Stall the forward so concurrent requests pile past the queue
        # limit; the server must answer 429, not hang or drop sockets.
        service = InferenceService(tiny_service.config,
                                   registry=tiny_service.registry,
                                   workload=tiny_service._workload)
        service.prepare()
        real = service.run_batch
        service.run_batch = lambda x: (time.sleep(0.2), real(x))[1]
        service.config = tiny_serve_config(queue_limit=1, max_batch=1,
                                           max_wait_ms=0.0)
        server, host, port, thread = _start(service)
        try:
            wait_for_server(host, port, timeout_s=30)
            codes = []

            def one(i):
                with ServeClient(host, port) as client:
                    try:
                        client.infer(indices=[i])
                        return "ok"
                    except ServeRequestError as exc:
                        codes.append(exc.code)
                        return "shed"

            with ThreadPoolExecutor(6) as pool:
                outcomes = list(pool.map(one, range(6)))
            assert "shed" in outcomes, outcomes
            assert set(codes) == {429}
            assert server.batcher.n_shed > 0
        finally:
            server.request_stop()
            thread.join(timeout=30)

    def test_deadline_times_out_with_504(self, tiny_service):
        service = InferenceService(tiny_service.config,
                                   registry=tiny_service.registry,
                                   workload=tiny_service._workload)
        service.prepare()
        # A wide-open window parks the request past its deadline.
        service.config = tiny_serve_config(max_batch=64, max_wait_ms=300.0,
                                           deadline_ms=1.0)
        server, host, port, thread = _start(service)
        try:
            wait_for_server(host, port, timeout_s=30)
            with ServeClient(host, port) as client:
                with pytest.raises(ServeRequestError) as exc:
                    client.infer(indices=[0])
                assert exc.value.code == 504
                # per-request deadline overrides the server default
                r = client.infer(indices=[0], deadline_ms=30_000.0)
                assert r["ok"]
            assert server.batcher.n_expired == 1
        finally:
            server.request_stop()
            thread.join(timeout=30)


class TestShutdown:
    def test_client_shutdown_drains_and_exits(self, tiny_service):
        server, host, port, thread = _start(tiny_service)
        wait_for_server(host, port, timeout_s=30)
        with ServeClient(host, port) as client:
            r = client.infer(indices=[0])
            assert r["ok"]
            ack = client.shutdown()
            assert ack["ok"]
        thread.join(timeout=30)
        assert not thread.is_alive()
        assert server.batcher.queued == 0
        with pytest.raises(OSError):
            ServeClient(host, port, timeout_s=2.0)

    def test_request_stop_before_run_exits_immediately(self, tiny_service):
        # A stop requested before run() must be honoured on entry —
        # and run() under asyncio.run() must not trip over primitives
        # bound to another (or no) event loop at construction time.
        server = ServeServer(tiny_service, port=0)
        server.request_stop()

        async def go():
            await asyncio.wait_for(server.run(), timeout=30)

        asyncio.run(go())

    def test_endpoint_file_roundtrip(self, tmp_path):
        path = tmp_path / "endpoint"
        path.write_text("127.0.0.1:12345\n")
        assert read_endpoint_file(path, timeout_s=1.0) == \
            ("127.0.0.1", 12345)
        with pytest.raises(TimeoutError):
            read_endpoint_file(tmp_path / "missing", timeout_s=0.2)
