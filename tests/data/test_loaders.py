"""Dataset container and batch iteration."""

import numpy as np
import pytest

from repro.data.loaders import Dataset, iterate_batches


def make_data(n=20):
    return Dataset(np.arange(n * 4, dtype=float).reshape(n, 4),
                   np.arange(n) % 3)


class TestDataset:
    def test_len(self):
        assert len(make_data(15)) == 15

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            Dataset(np.zeros((3, 2)), np.zeros(4))

    def test_split_sizes(self):
        train, test = make_data(20).split(0.75, rng=0)
        assert len(train) == 15 and len(test) == 5

    def test_split_is_partition(self):
        data = make_data(20)
        train, test = data.split(0.5, rng=0)
        combined = np.concatenate([train.images[:, 0], test.images[:, 0]])
        np.testing.assert_array_equal(np.sort(combined),
                                      np.sort(data.images[:, 0]))

    def test_split_keeps_image_label_pairing(self):
        n = 30
        data = Dataset(np.arange(n, dtype=float).reshape(n, 1),
                       np.arange(n))
        train, test = data.split(0.6, rng=1)
        np.testing.assert_array_equal(train.images[:, 0], train.labels)
        np.testing.assert_array_equal(test.images[:, 0], test.labels)

    def test_split_invalid_fraction(self):
        with pytest.raises(ValueError):
            make_data().split(1.0)

    def test_split_deterministic(self):
        a, _ = make_data().split(0.5, rng=5)
        b, _ = make_data().split(0.5, rng=5)
        np.testing.assert_array_equal(a.images, b.images)

    def test_subset(self):
        sub = make_data(20).subset(7)
        assert len(sub) == 7


class TestIterateBatches:
    def test_covers_everything_once(self):
        data = make_data(17)
        seen = []
        for x, y in iterate_batches(data, 5, rng=0):
            seen.extend(x[:, 0].tolist())
        np.testing.assert_array_equal(np.sort(seen),
                                      np.sort(data.images[:, 0]))

    def test_batch_sizes(self):
        sizes = [len(y) for _, y in iterate_batches(make_data(17), 5,
                                                    shuffle=False)]
        assert sizes == [5, 5, 5, 2]

    def test_no_shuffle_preserves_order(self):
        x, _ = next(iter(iterate_batches(make_data(10), 4, shuffle=False)))
        np.testing.assert_array_equal(x[:, 0], [0, 4, 8, 12])

    def test_shuffle_changes_order(self):
        x, _ = next(iter(iterate_batches(make_data(100), 50, rng=3)))
        assert not np.array_equal(x[:, 0], np.arange(50) * 4.0)

    def test_invalid_batch_size(self):
        with pytest.raises(ValueError):
            list(iterate_batches(make_data(), 0))

    def test_pairing_preserved_under_shuffle(self):
        n = 40
        data = Dataset(np.arange(n, dtype=float).reshape(n, 1),
                       np.arange(n))
        for x, y in iterate_batches(data, 7, rng=2):
            np.testing.assert_array_equal(x[:, 0], y)
