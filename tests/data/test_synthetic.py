"""Synthetic dataset generators: determinism, ranges, learnability."""

import numpy as np
import pytest

from repro.data.synthetic import synthetic_cifar, synthetic_digits
from repro.utils.rng import make_rng


class TestDigits:
    def test_shapes(self):
        x, y = synthetic_digits(12, rng=0)
        assert x.shape == (12, 1, 28, 28)
        assert y.shape == (12,)

    def test_value_range(self):
        x, _ = synthetic_digits(20, rng=0)
        assert x.min() >= 0.0 and x.max() <= 1.0

    def test_labels_in_range(self):
        _, y = synthetic_digits(50, rng=1)
        assert y.min() >= 0 and y.max() <= 9
        assert y.dtype == np.int64

    def test_deterministic(self):
        x1, y1 = synthetic_digits(8, rng=7)
        x2, y2 = synthetic_digits(8, rng=7)
        np.testing.assert_array_equal(x1, x2)
        np.testing.assert_array_equal(y1, y2)

    def test_different_seeds_differ(self):
        x1, _ = synthetic_digits(8, rng=1)
        x2, _ = synthetic_digits(8, rng=2)
        assert not np.array_equal(x1, x2)

    def test_instances_of_same_digit_vary(self):
        rng = make_rng(0)
        from repro.data.synthetic import _render_digit
        a = _render_digit(3, 28, rng)
        b = _render_digit(3, 28, rng)
        assert not np.array_equal(a, b)

    def test_digits_are_distinguishable_by_template(self):
        """Mean images of different classes should differ markedly."""
        x, y = synthetic_digits(300, rng=0)
        means = np.stack([x[y == d].mean(axis=0) for d in range(10)])
        dists = []
        for i in range(10):
            for j in range(i + 1, 10):
                dists.append(np.abs(means[i] - means[j]).mean())
        assert min(dists) > 0.02

    def test_custom_size(self):
        x, _ = synthetic_digits(3, size=20, rng=0)
        assert x.shape == (3, 1, 20, 20)

    def test_linear_probe_learns(self):
        """A least-squares linear classifier beats chance comfortably —
        the task carries class signal without being degenerate."""
        x, y = synthetic_digits(400, rng=0)
        flat = x.reshape(len(x), -1)
        onehot = np.eye(10)[y]
        w, *_ = np.linalg.lstsq(flat, onehot, rcond=None)
        xt, yt = synthetic_digits(200, rng=99)
        pred = (xt.reshape(len(xt), -1) @ w).argmax(axis=1)
        assert (pred == yt).mean() > 0.5


class TestCifar:
    def test_shapes(self):
        x, y = synthetic_cifar(6, rng=0)
        assert x.shape == (6, 3, 32, 32)
        assert y.shape == (6,)

    def test_value_range(self):
        x, _ = synthetic_cifar(10, rng=0)
        assert x.min() >= 0.0 and x.max() <= 1.0

    def test_deterministic(self):
        x1, y1 = synthetic_cifar(5, rng=3)
        x2, y2 = synthetic_cifar(5, rng=3)
        np.testing.assert_array_equal(x1, x2)
        np.testing.assert_array_equal(y1, y2)

    def test_classes_have_distinct_colour_stats(self):
        x, y = synthetic_cifar(300, rng=0)
        means = np.stack([x[y == c].mean(axis=(0, 2, 3)) for c in range(10)])
        # At least most class pairs differ in mean colour.
        dists = np.linalg.norm(means[:, None] - means[None, :], axis=-1)
        np.fill_diagonal(dists, np.inf)
        assert np.median(dists[np.isfinite(dists)]) > 0.03

    def test_custom_size(self):
        x, _ = synthetic_cifar(2, size=16, rng=0)
        assert x.shape == (2, 3, 16, 16)

    def test_not_trivially_constant(self):
        x, _ = synthetic_cifar(4, rng=0)
        assert x.std() > 0.05
