"""Augmentation transforms."""

import numpy as np
import pytest

from repro.data.augment import (add_noise, augment_dataset, horizontal_flip,
                                random_shift)
from repro.data.loaders import Dataset


@pytest.fixture
def small_data(rng):
    return Dataset(rng.uniform(size=(10, 1, 6, 6)),
                   np.arange(10) % 3)


class TestAddNoise:
    def test_stays_in_range(self, small_data, rng):
        out = add_noise(small_data.images, 0.5, rng)
        assert out.min() >= 0 and out.max() <= 1

    def test_zero_level_identity(self, small_data, rng):
        np.testing.assert_array_equal(
            add_noise(small_data.images, 0.0, rng), small_data.images)

    def test_negative_level_rejected(self, small_data):
        with pytest.raises(ValueError):
            add_noise(small_data.images, -0.1)

    def test_changes_values(self, small_data, rng):
        out = add_noise(small_data.images, 0.2, rng)
        assert not np.array_equal(out, small_data.images)


class TestRandomShift:
    def test_shape_preserved(self, small_data, rng):
        out = random_shift(small_data.images, 2, rng)
        assert out.shape == small_data.images.shape

    def test_zero_shift_identity(self, small_data, rng):
        np.testing.assert_array_equal(
            random_shift(small_data.images, 0, rng), small_data.images)

    def test_vacated_pixels_are_zero(self, rng):
        images = np.ones((50, 1, 6, 6))
        out = random_shift(images, 2, rng)
        # Some image must have shifted, exposing zero borders.
        assert (out == 0).any()

    def test_mass_not_increased(self, small_data, rng):
        out = random_shift(small_data.images, 2, rng)
        assert out.sum() <= small_data.images.sum() + 1e-9


class TestFlip:
    def test_involution(self, small_data):
        np.testing.assert_array_equal(
            horizontal_flip(horizontal_flip(small_data.images)),
            small_data.images)

    def test_flips_columns(self):
        img = np.arange(4.0).reshape(1, 1, 1, 4)
        np.testing.assert_array_equal(horizontal_flip(img).reshape(-1),
                                      [3, 2, 1, 0])


class TestAugmentDataset:
    def test_size_multiplied(self, small_data, rng):
        aug = augment_dataset(small_data,
                              [lambda x: add_noise(x, 0.1, rng),
                               horizontal_flip])
        assert len(aug) == 3 * len(small_data)

    def test_without_original(self, small_data):
        aug = augment_dataset(small_data, [horizontal_flip],
                              include_original=False)
        assert len(aug) == len(small_data)

    def test_labels_repeated(self, small_data):
        aug = augment_dataset(small_data, [horizontal_flip])
        np.testing.assert_array_equal(aug.labels[:10], aug.labels[10:])

    def test_empty_rejected(self, small_data):
        with pytest.raises(ValueError):
            augment_dataset(small_data, [], include_original=False)
