"""Every backend must reproduce the loop-based reference bit-for-bit.

The ``reference`` backend is the original code moved verbatim and acts
as the correctness oracle; the sweep below drives every registered
backend (``vectorized``, ``accel``, …) over dense engines (ideal and
finite-resolution ADC, complemented offset groups, partial last
groups, boolean-masked rows), the conv/pooling window kernels (odd
shapes, stride, padding) and the tiled multi-crossbar engine, and
asserts float-rounding-level agreement everywhere.
"""

import numpy as np
import pytest

from repro.backend import available_backends, get_backend, use_backend
from repro.core.offsets import OffsetPlan
from repro.device.cell import MLC2, SLC
from repro.device.lut import DeviceModel
from repro.device.variation import VariationModel
from repro.nn import functional as F
from repro.nn.tensor import Tensor
from repro.utils.rng import make_rng
from repro.xbar.adc import ADC
from repro.xbar.engine import CrossbarEngine
from repro.xbar.mapper import CrossbarMapper
from repro.xbar.tiled import TiledCrossbarEngine

OTHER_BACKENDS = [n for n in available_backends() if n != "reference"]


def build_engine(rows, cols, m, cell, seed, adc=None, complemented=False,
                 backend=None):
    rng = make_rng(seed)
    device = DeviceModel(cell, VariationModel(0.5), n_bits=8)
    plan = OffsetPlan(rows, cols, m)
    values = rng.integers(0, 256, size=(rows, cols))
    cells = device.program_cells(values, rng)
    registers = rng.integers(-40, 40,
                             size=(plan.n_groups, cols)).astype(float)
    complement = (rng.random((plan.n_groups, cols)) > 0.5 if complemented
                  else np.zeros((plan.n_groups, cols), dtype=bool))
    return CrossbarEngine(
        cells=cells, plan=plan, registers=registers, complement=complement,
        cell=cell, weight_bits=8, input_bits=8, weight_scale=0.01,
        weight_zero_point=128, input_scale=1 / 255, adc=adc, backend=backend)


class TestEngineVMM:
    """Dense bit-serial VMM: reference vs every other backend."""

    @pytest.mark.parametrize("backend", OTHER_BACKENDS)
    @pytest.mark.parametrize("complemented", [False, True],
                             ids=["plain", "complement"])
    @pytest.mark.parametrize("adc", [None, ADC(bits=6, full_scale=64.0)],
                             ids=["ideal-adc", "6bit-adc"])
    @pytest.mark.parametrize("cell", [SLC, MLC2], ids=["slc", "mlc2"])
    @pytest.mark.parametrize("rows,m", [(16, 8), (13, 8), (16, 4), (7, 16)],
                             ids=["even", "partial-group", "m4",
                                  "one-short-group"])
    def test_matches_reference(self, backend, complemented, adc, cell,
                               rows, m):
        args = dict(rows=rows, cols=5, m=m, cell=cell, seed=11, adc=adc,
                    complemented=complemented)
        ref = build_engine(backend="reference", **args)
        alt = build_engine(backend=backend, **args)
        x = make_rng(12).uniform(0, 1, size=(6, rows))
        np.testing.assert_allclose(alt.forward(x), ref.forward(x),
                                   rtol=1e-9, atol=1e-9)

    @pytest.mark.parametrize("backend", OTHER_BACKENDS)
    def test_single_vector_and_empty_batch(self, backend):
        ref = build_engine(16, 3, 8, SLC, seed=3, backend="reference")
        alt = build_engine(16, 3, 8, SLC, seed=3, backend=backend)
        x1 = make_rng(4).uniform(0, 1, size=16)          # 1-D input
        np.testing.assert_allclose(alt.forward(x1), ref.forward(x1),
                                   rtol=1e-9, atol=1e-9)
        x0 = np.zeros((0, 16))
        assert alt.forward(x0).shape == ref.forward(x0).shape == (0, 3)

    @pytest.mark.parametrize("adc", [None, ADC(bits=6, full_scale=64.0)],
                             ids=["ideal-adc", "6bit-adc"])
    @pytest.mark.parametrize("backend", OTHER_BACKENDS)
    def test_boolean_masked_rows(self, backend, adc):
        """Inactive wordlines (boolean-masked / all-zero rows) must not
        perturb any backend: zeroed drives still contribute the digital
        offset of their group exactly like the reference."""
        rows = 19
        ref = build_engine(rows, 4, 8, MLC2, seed=7, adc=adc,
                           complemented=True, backend="reference")
        alt = build_engine(rows, 4, 8, MLC2, seed=7, adc=adc,
                           complemented=True, backend=backend)
        x = make_rng(8).uniform(0, 1, size=(5, rows))
        mask = make_rng(9).random(rows) > 0.5
        x[:, mask] = 0.0
        np.testing.assert_allclose(alt.forward(x), ref.forward(x),
                                   rtol=1e-9, atol=1e-9)
        x_all_masked = np.zeros((3, rows))
        np.testing.assert_allclose(alt.forward(x_all_masked),
                                   ref.forward(x_all_masked),
                                   rtol=1e-9, atol=1e-9)


class TestWindowKernels:
    """im2col / col2im / pool_windows across odd shapes."""

    SHAPES = [
        # (n, c, h, w, kh, kw, stride, pad)
        (2, 3, 6, 6, 3, 3, 1, 0),
        (1, 1, 7, 5, 3, 2, 2, 1),
        (3, 2, 5, 5, 1, 1, 1, 0),
        (2, 4, 8, 8, 2, 2, 2, 0),
        (1, 2, 9, 7, 4, 3, 3, 2),
    ]

    @pytest.mark.parametrize("backend", OTHER_BACKENDS)
    @pytest.mark.parametrize("shape", SHAPES)
    def test_im2col(self, backend, shape):
        n, c, h, w, kh, kw, stride, pad = shape
        x = make_rng(20).normal(size=(n, c, h, w))
        ref, oh_ref, ow_ref = get_backend("reference").im2col(
            x, kh, kw, stride, pad)
        alt, oh_alt, ow_alt = get_backend(backend).im2col(
            x, kh, kw, stride, pad)
        assert (oh_alt, ow_alt) == (oh_ref, ow_ref)
        np.testing.assert_array_equal(alt, ref)

    @pytest.mark.parametrize("backend", OTHER_BACKENDS)
    @pytest.mark.parametrize("shape", SHAPES)
    def test_col2im_adjoint(self, backend, shape):
        n, c, h, w, kh, kw, stride, pad = shape
        oh = (h + 2 * pad - kh) // stride + 1
        ow = (w + 2 * pad - kw) // stride + 1
        cols = make_rng(21).normal(size=(n, c * kh * kw, oh * ow))
        ref = get_backend("reference").col2im(
            cols, (n, c, h, w), kh, kw, stride, pad)
        alt = get_backend(backend).col2im(
            cols, (n, c, h, w), kh, kw, stride, pad)
        np.testing.assert_allclose(alt, ref, rtol=1e-12, atol=1e-12)

    @pytest.mark.parametrize("backend", OTHER_BACKENDS)
    @pytest.mark.parametrize("k,stride", [(2, 2), (3, 1), (3, 2), (2, 3)])
    def test_pool_windows(self, backend, k, stride):
        x = make_rng(22).normal(size=(2, 3, 7, 9))
        ref = get_backend("reference").pool_windows(x, k, stride)
        alt = get_backend(backend).pool_windows(x, k, stride)
        np.testing.assert_array_equal(alt, ref)


class TestLayerOps:
    """Whole forward/backward ops through the dispatch layer."""

    @pytest.mark.parametrize("backend", OTHER_BACKENDS)
    def test_conv2d_forward_and_grad(self, backend):
        rng = make_rng(30)
        x_data = rng.normal(size=(2, 3, 7, 7))
        w_data = rng.normal(size=(4, 3, 3, 3))

        def run():
            x = Tensor(x_data, requires_grad=True)
            w = Tensor(w_data, requires_grad=True)
            y = F.conv2d(x, w, stride=2, padding=1)
            y.sum().backward()
            return y.data, x.grad, w.grad

        with use_backend("reference"):
            y_ref, gx_ref, gw_ref = run()
        with use_backend(backend):
            y_alt, gx_alt, gw_alt = run()
        np.testing.assert_allclose(y_alt, y_ref, rtol=1e-9, atol=1e-9)
        np.testing.assert_allclose(gx_alt, gx_ref, rtol=1e-9, atol=1e-9)
        np.testing.assert_allclose(gw_alt, gw_ref, rtol=1e-9, atol=1e-9)

    @pytest.mark.parametrize("backend", OTHER_BACKENDS)
    @pytest.mark.parametrize("op", [F.max_pool2d, F.avg_pool2d],
                             ids=["max", "avg"])
    def test_pooling(self, backend, op):
        x_data = make_rng(31).normal(size=(2, 3, 6, 6))

        def run():
            x = Tensor(x_data, requires_grad=True)
            y = op(x, 2, stride=2)
            y.sum().backward()
            return y.data, x.grad

        with use_backend("reference"):
            y_ref, g_ref = run()
        with use_backend(backend):
            y_alt, g_alt = run()
        np.testing.assert_array_equal(y_alt, y_ref)
        np.testing.assert_array_equal(g_alt, g_ref)


class TestTiledEngine:
    @pytest.mark.parametrize("backend", OTHER_BACKENDS)
    @pytest.mark.parametrize("adc", [None, ADC(bits=8, full_scale=128.0)],
                             ids=["ideal-adc", "8bit-adc"])
    def test_tiled_matches_reference(self, backend, adc):
        rng = make_rng(40)
        rows, cols, m = 200, 40, 16
        device = DeviceModel(MLC2, VariationModel(0.4), n_bits=8)
        plan = OffsetPlan(rows, cols, m)
        values = rng.integers(0, 256, size=(rows, cols))
        cells = device.program_cells(values, rng)
        registers = rng.integers(-20, 20,
                                 size=(plan.n_groups, cols)).astype(float)
        complement = rng.random((plan.n_groups, cols)) > 0.5
        common = dict(cells=cells, plan=plan, registers=registers,
                      complement=complement, cell=MLC2, weight_scale=0.01,
                      weight_zero_point=128, input_scale=1 / 255, adc=adc,
                      mapper=CrossbarMapper(size=128,
                                            cells_per_weight=cells.shape[-1]))
        ref = TiledCrossbarEngine(backend="reference", **common)
        alt = TiledCrossbarEngine(backend=backend, **common)
        x = rng.uniform(0, 1, size=(4, rows))
        np.testing.assert_allclose(alt.forward(x), ref.forward(x),
                                   rtol=1e-9, atol=1e-9)
