"""The backend registry: selection precedence and lifecycle."""

import numpy as np
import pytest

import repro.backend as B
from repro.backend import (available_backends, default_backend_name,
                           get_backend, register_backend,
                           set_default_backend, use_backend)
from repro.backend.reference import ReferenceBackend
from repro.backend.vectorized import VectorizedBackend


@pytest.fixture(autouse=True)
def clean_default(monkeypatch):
    """Leave the process default untouched by every test here."""
    monkeypatch.delenv(B.ENV_VAR, raising=False)
    yield
    set_default_backend(None)


class TestRegistry:
    def test_builtins_registered(self):
        names = available_backends()
        assert "reference" in names and "vectorized" in names
        assert "accel" in names

    def test_instances_are_cached(self):
        assert get_backend("reference") is get_backend("reference")
        assert isinstance(get_backend("reference"), ReferenceBackend)
        assert isinstance(get_backend("vectorized"), VectorizedBackend)

    def test_unknown_name_lists_registered(self):
        with pytest.raises(ValueError, match="no-such-backend"):
            get_backend("no-such-backend")
        with pytest.raises(ValueError, match="reference"):
            get_backend("no-such-backend")

    def test_duplicate_registration_guard(self):
        with pytest.raises(ValueError, match="already registered"):
            register_backend("reference", ReferenceBackend)
        # replace=True is the sanctioned escape hatch.
        register_backend("reference", ReferenceBackend, replace=True)
        assert isinstance(get_backend("reference"), ReferenceBackend)


class TestSelection:
    def test_builtin_default(self):
        assert default_backend_name() == B.BUILTIN_DEFAULT == "vectorized"

    def test_env_var_selects(self, monkeypatch):
        monkeypatch.setenv(B.ENV_VAR, "reference")
        assert default_backend_name() == "reference"
        assert get_backend().name == "reference"

    def test_unknown_env_var_raises_listing_names(self, monkeypatch):
        """A typo'd REPRO_BACKEND fails loudly with the valid names."""
        monkeypatch.setenv(B.ENV_VAR, "warp-drive")
        with pytest.raises(ValueError) as excinfo:
            get_backend()
        message = str(excinfo.value)
        assert "warp-drive" in message
        for name in ("accel", "reference", "vectorized"):
            assert name in message

    def test_override_beats_env(self, monkeypatch):
        monkeypatch.setenv(B.ENV_VAR, "reference")
        set_default_backend("vectorized")
        assert default_backend_name() == "vectorized"
        set_default_backend(None)
        assert default_backend_name() == "reference"

    def test_set_default_validates_eagerly(self):
        with pytest.raises(ValueError, match="typo"):
            set_default_backend("typo")
        assert default_backend_name() == B.BUILTIN_DEFAULT

    def test_use_backend_restores(self):
        before = default_backend_name()
        with use_backend("reference") as backend:
            assert backend.name == "reference"
            assert default_backend_name() == "reference"
        assert default_backend_name() == before

    def test_use_backend_restores_on_error(self):
        before = default_backend_name()
        with pytest.raises(RuntimeError):
            with use_backend("reference"):
                raise RuntimeError("boom")
        assert default_backend_name() == before


class TestKernelCounters:
    def test_dispatch_increments_per_kernel_counter(self):
        import repro.obs as obs
        from repro.obs import metrics

        obs.enable()
        try:
            obs.reset()
            x = np.arange(2 * 3 * 4 * 4, dtype=np.float64).reshape(2, 3, 4, 4)
            get_backend("vectorized").im2col(x, 2, 2, stride=1, pad=0)
            snap = metrics.REGISTRY.snapshot()
            assert snap["counters"].get("backend.vectorized.im2col") == 1
        finally:
            obs.reset()
            obs.disable()
