"""The accel backend: packed operands, offload tiers, fallback rules.

Numerical interchangeability with ``reference`` is covered by the
shared sweep in ``test_equivalence.py`` (accel participates like any
registered backend); this module pins down what is *specific* to accel:
the single-GEMM packed ideal-ADC reformulation, the chunked finite-ADC
bit-plane stacking, the ``REPRO_ACCEL`` tier resolution (including the
warn-once fallback when a requested library is missing), and the
serve-cache equivalence tag it shares with ``vectorized``.
"""

import logging

import numpy as np
import pytest

import repro.backend.accel as accel_mod
from repro.backend import get_backend
from repro.backend.accel import (AccelBackend, requested_offload_tier,
                                 reset_offload_cache, resolve_offload_tier)
from repro.device.cell import MLC2, SLC
from repro.utils.rng import make_rng
from repro.xbar.adc import ADC

from tests.backend.test_equivalence import build_engine

#: Offload tiers exercisable here: blas always, numba/torch when importable.
AVAILABLE_TIERS = ["blas"] + [t for t in ("numba", "torch")
                              if accel_mod._importable(t)]


@pytest.fixture(autouse=True)
def clean_tier(monkeypatch):
    """Isolate every test from the ambient REPRO_ACCEL and the cached
    tier resolution."""
    monkeypatch.delenv(accel_mod.ENV_VAR, raising=False)
    reset_offload_cache()
    yield
    reset_offload_cache()


class TestTierResolution:
    def test_default_is_auto(self):
        assert requested_offload_tier() == "auto"

    def test_unknown_tier_raises_listing_values(self, monkeypatch):
        monkeypatch.setenv(accel_mod.ENV_VAR, "cuda")
        with pytest.raises(ValueError) as excinfo:
            requested_offload_tier()
        message = str(excinfo.value)
        assert "cuda" in message
        for tier in accel_mod.OFFLOAD_TIERS:
            assert tier in message

    def test_blas_always_resolves(self, monkeypatch):
        monkeypatch.setenv(accel_mod.ENV_VAR, "blas")
        assert resolve_offload_tier() == "blas"

    def test_auto_resolves_silently(self, caplog):
        with caplog.at_level(logging.WARNING,
                             logger="repro.backend.accel"):
            tier = resolve_offload_tier()
        assert tier in ("blas", "numba", "torch")
        assert not caplog.records

    @pytest.mark.parametrize("library", ["numba", "torch"])
    def test_missing_library_falls_back_with_single_warning(
            self, monkeypatch, caplog, library):
        if accel_mod._importable(library):
            pytest.skip(f"{library} is importable in this environment")
        monkeypatch.setenv(accel_mod.ENV_VAR, library)
        engine = build_engine(16, 3, 8, SLC, seed=1, backend="accel")
        x = make_rng(2).uniform(0, 1, size=(4, 16))
        with caplog.at_level(logging.WARNING,
                             logger="repro.backend.accel"):
            for _ in range(3):                  # no per-call spam
                engine.forward(x)
            assert resolve_offload_tier() == "blas"
        warnings = [r for r in caplog.records
                    if r.levelno == logging.WARNING]
        assert len(warnings) == 1
        assert library in warnings[0].getMessage()

    def test_status_reports_tier(self, monkeypatch):
        monkeypatch.setenv(accel_mod.ENV_VAR, "blas")
        backend = get_backend("accel")
        assert backend.status() == "available (BLAS fallback)"


class TestPackedOperands:
    def test_packed_ideal_weights_reproduce_engine_output(self):
        """One GEMM against the packed matrix equals the full ideal-ADC
        engine_vmm (analog + offset + complement + zero-point)."""
        engine = build_engine(13, 5, 8, MLC2, seed=5, complemented=True,
                              backend="accel")
        op = engine._operands
        xq = make_rng(6).integers(0, 256, size=(7, 13))
        expected = get_backend("vectorized").engine_vmm(xq, op)
        packed = xq.astype(np.float64) @ op.packed_ideal_weights
        np.testing.assert_allclose(packed, expected, rtol=1e-9, atol=1e-9)

    def test_packed_operands_are_cached(self):
        engine = build_engine(16, 4, 8, SLC, seed=7, backend="accel")
        op = engine._operands
        assert op.packed_ideal_weights is op.packed_ideal_weights
        assert op.cells_packed is op.cells_packed
        assert op.bit_weights is op.bit_weights

    def test_grouped_bit_planes_layout(self):
        engine = build_engine(13, 3, 8, SLC, seed=8, backend="accel")
        op = engine._operands
        xq = make_rng(9).integers(0, 256, size=(4, 13))
        stacked = op.grouped_bit_planes(xq)
        assert stacked.shape == (op.n_groups, op.input_bits * 4,
                                 op.granularity)
        # Plane b of sample n sits at stacked row b*N + n of its group.
        for bit in (0, 3, 7):
            plane = (xq >> bit) & 1
            grouped = op.grouped_inputs(plane.astype(np.float64))
            for g in range(op.n_groups):
                np.testing.assert_array_equal(
                    stacked[g, bit * 4:(bit + 1) * 4], grouped[:, g])

    def test_finite_adc_chunking_is_invisible(self, monkeypatch):
        """Shrinking the byte budget to force many chunks must not
        change a single output bit."""
        adc = ADC(bits=6, full_scale=64.0)
        engine = build_engine(16, 5, 8, MLC2, seed=10, adc=adc,
                              complemented=True, backend="accel")
        x = make_rng(11).uniform(0, 1, size=(9, 16))
        unchunked = engine.forward(x)
        monkeypatch.setattr(accel_mod, "PACKED_BYTES_LIMIT", 1)
        assert accel_mod._finite_chunk_rows(engine._operands) == 1
        np.testing.assert_array_equal(engine.forward(x), unchunked)


class TestOffloadTiers:
    @pytest.mark.parametrize("tier", AVAILABLE_TIERS)
    @pytest.mark.parametrize("adc", [None, ADC(bits=6, full_scale=64.0)],
                             ids=["ideal-adc", "6bit-adc"])
    def test_every_available_tier_matches_reference(self, monkeypatch,
                                                    tier, adc):
        monkeypatch.setenv(accel_mod.ENV_VAR, tier)
        reset_offload_cache()
        args = dict(rows=13, cols=5, m=8, cell=MLC2, seed=21, adc=adc,
                    complemented=True)
        ref = build_engine(backend="reference", **args)
        alt = build_engine(backend="accel", **args)
        assert get_backend("accel").offload_tier() == tier
        x = make_rng(22).uniform(0, 1, size=(6, 13))
        np.testing.assert_allclose(alt.forward(x), ref.forward(x),
                                   rtol=1e-9, atol=1e-9)


class TestCacheTag:
    def test_accel_shares_vectorized_equivalence_class(self):
        assert AccelBackend.cache_tag == "vectorized"
        assert get_backend("vectorized").cache_tag == "vectorized"
        assert get_backend("reference").cache_tag == "reference"

    def test_window_kernels_bitwise_identical_to_vectorized(self):
        """The property the shared cache_tag rests on: accel inherits
        vectorized's window kernels unchanged, so the deployed
        fast-float path is bitwise identical across the two."""
        x = make_rng(30).normal(size=(2, 3, 9, 7))
        vec, acc = get_backend("vectorized"), get_backend("accel")
        ref_cols, _, _ = vec.im2col(x, 3, 3, 1, 1)
        acc_cols, _, _ = acc.im2col(x, 3, 3, 1, 1)
        np.testing.assert_array_equal(acc_cols, ref_cols)
        np.testing.assert_array_equal(acc.pool_windows(x, 2, 2),
                                      vec.pool_windows(x, 2, 2))
