"""Cycle-count / latency model."""

import pytest

from repro.arch.latency import (granularity_tradeoff, layer_latency,
                                layer_vmm_cycles, model_latency)


class TestCycles:
    def test_full_activation_baseline(self):
        # 128 rows, all wordlines active: 8 input bits x 1 group.
        assert layer_vmm_cycles(128, granularity=128) == 8

    def test_paper_example_m16(self):
        """128x128 crossbar, 16 wordlines per cycle -> 8x the cycles."""
        assert layer_vmm_cycles(128, granularity=16) == 8 * 8

    def test_halving_m_doubles_cycles(self):
        assert layer_vmm_cycles(128, 32) == 2 * layer_vmm_cycles(128, 64)

    def test_row_tiles_run_in_parallel(self):
        # Beyond one crossbar, extra row tiles are parallel hardware.
        assert layer_vmm_cycles(512, 16) == layer_vmm_cycles(128, 16)

    def test_small_layer(self):
        assert layer_vmm_cycles(25, granularity=16) == 8 * 2

    def test_invalid(self):
        with pytest.raises(ValueError):
            layer_vmm_cycles(0, 16)


class TestLatency:
    def test_nanoseconds_use_tile_clock(self):
        est = layer_latency(128, 128)
        assert est.nanoseconds == est.cycles * 100.0
        assert est.microseconds == pytest.approx(est.nanoseconds / 1e3)

    def test_model_latency_sums_layers(self):
        total = model_latency([128, 128], 16)
        single = layer_latency(128, 16).nanoseconds
        assert total == 2 * single

    def test_tradeoff_monotone(self):
        """Latency falls and registers shrink as m grows — the paper's
        'finer sharing costs more cycles' statement, quantified."""
        rows = [25, 150, 400, 120, 84]      # LeNet's matrices
        table = granularity_tradeoff(rows, granularities=(16, 64, 128))
        latencies = [t[1] for t in table]
        registers = [t[2] for t in table]
        assert latencies[0] > latencies[1] > latencies[2]
        assert registers[0] > registers[1] > registers[2]
