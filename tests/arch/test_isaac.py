"""ISAAC tile parameters."""

import pytest

from repro.arch.isaac import DEFAULT_TILE, ISAACTile


class TestISAACTile:
    def test_published_anchors(self):
        assert DEFAULT_TILE.area_mm2 == 0.372
        assert DEFAULT_TILE.power_mw == 330.0
        assert DEFAULT_TILE.cycle_ns == 100.0

    def test_crossbars_per_tile(self):
        assert DEFAULT_TILE.crossbars_per_tile == 96

    def test_cells_per_weight(self):
        assert DEFAULT_TILE.cells_per_weight == 4     # 8-bit on 2-bit MLCs

    def test_weight_cols_per_crossbar(self):
        assert DEFAULT_TILE.weight_cols_per_crossbar == 32

    def test_paper_register_counts(self):
        """Section IV-B2: 256 registers at m=16, 32 at m=128."""
        assert DEFAULT_TILE.offset_registers_per_crossbar(16) == 256
        assert DEFAULT_TILE.offset_registers_per_crossbar(128) == 32

    def test_register_count_invalid_granularity(self):
        with pytest.raises(ValueError):
            DEFAULT_TILE.offset_registers_per_crossbar(0)

    def test_custom_tile(self):
        tile = ISAACTile(crossbar_size=64, cell_bits=1)
        assert tile.cells_per_weight == 8
        assert tile.weight_cols_per_crossbar == 8
