"""Table I reading-power model."""

import numpy as np
import pytest

from repro.arch.energy import reading_power, relative_reading_power
from repro.device.cell import MLC2, SLC


class TestReadingPower:
    def test_higher_values_more_power(self):
        low = reading_power(np.full(10, 10), MLC2)
        high = reading_power(np.full(10, 240), MLC2)
        assert high > low

    def test_zero_weights_still_leak(self):
        """Finite ON/OFF ratio: even all-zero weights draw read power."""
        assert reading_power(np.zeros(10, dtype=int), MLC2) > 0

    def test_linear_in_duplication(self):
        v = np.array([1, 2, 3])
        single = reading_power(v, SLC)
        double = reading_power(np.concatenate([v, v]), SLC)
        np.testing.assert_allclose(double, 2 * single)

    def test_relative_below_one_when_ctw_smaller(self):
        ntw = np.full((8, 4), 255)    # all cells fully ON
        ctw = np.full((8, 4), 5)      # mostly OFF cells
        rel = relative_reading_power([ctw], [ntw], MLC2)
        assert rel < 1.0

    def test_relative_identity(self):
        w = np.arange(32).reshape(8, 4)
        assert relative_reading_power([w], [w], MLC2) == pytest.approx(1.0)

    def test_layer_list_validation(self):
        with pytest.raises(ValueError):
            relative_reading_power([np.ones((2, 2), dtype=int)], [], MLC2)
        with pytest.raises(ValueError):
            relative_reading_power([], [], MLC2)

    def test_vawo_deployment_reduces_power(self, trained_tiny_mlp, blob_data):
        """The Table I effect end-to-end: VAWO* CTWs read cheaper."""
        from repro.arch.energy import deployment_reading_power
        from repro.core import DeployConfig, Deployer

        cfg = DeployConfig.from_method("vawo*", sigma=0.5, cell=MLC2,
                                       granularity=8)
        deployer = Deployer(trained_tiny_mlp, blob_data, cfg, rng=0)
        rel = deployment_reading_power(deployer)
        assert 0.1 < rel < 1.0
