"""Table II overhead model."""

import pytest

from repro.arch.area import (OverheadBreakdown, sum_multiply_latency_ok,
                             tile_overhead)


class TestTileOverhead:
    def test_paper_m16_totals(self):
        """Table II, m=16: 0.049 mm^2 (13.3%), 8.05 mW (2.4%)."""
        o = tile_overhead(16)
        assert abs(o.total_area_mm2 - 0.049) < 0.002
        assert abs(o.total_power_mw - 8.05) < 0.4
        assert abs(o.area_overhead_fraction - 0.133) < 0.01
        assert abs(o.power_overhead_fraction - 0.024) < 0.003

    def test_paper_m128_totals(self):
        """Table II, m=128: 0.064 mm^2 (17.2%), 22.77 mW (6.9%)."""
        o = tile_overhead(128)
        assert abs(o.total_area_mm2 - 0.064) < 0.002
        assert abs(o.total_power_mw - 22.77) < 0.8
        assert abs(o.area_overhead_fraction - 0.172) < 0.01
        assert abs(o.power_overhead_fraction - 0.069) < 0.005

    def test_overhead_grows_with_granularity(self):
        """The paper's trend: adder growth outpaces register savings."""
        assert tile_overhead(128).total_area_mm2 > \
            tile_overhead(16).total_area_mm2
        assert tile_overhead(128).total_power_mw > \
            tile_overhead(16).total_power_mw

    def test_registers_shrink_with_granularity(self):
        assert tile_overhead(128).register_area_mm2 < \
            tile_overhead(16).register_area_mm2

    def test_adders_grow_with_granularity(self):
        assert tile_overhead(128).adder_area_mm2 > \
            tile_overhead(16).adder_area_mm2

    def test_multiplier_cost_fixed(self):
        assert tile_overhead(16).multiplier_area_mm2 == \
            tile_overhead(128).multiplier_area_mm2

    def test_as_dict_keys(self):
        d = tile_overhead(16).as_dict()
        assert {"granularity", "total_area_mm2", "total_power_mw",
                "area_overhead", "power_overhead"} <= set(d)

    def test_invalid_granularity(self):
        with pytest.raises(ValueError):
            tile_overhead(0)


class TestLatency:
    def test_pipeline_integration_claim(self):
        """Section IV-B2: Sum+Multi fits in the 100 ns cycle for all m."""
        for m in (16, 64, 128):
            assert sum_multiply_latency_ok(m)
