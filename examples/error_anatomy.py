"""Dissect a deployment: where does the residual weight error live?

Deploys LeNet three ways (plain, VAWO*, VAWO*+PWT) and prints the
per-layer error anatomy from :mod:`repro.eval.analysis`: total RMS
error, the group-coherent bias a shared offset can still remove, the
within-group residual it cannot, and how hard the registers are
working. This is the diagnostic view that explains *why* each technique
helps: VAWO* shrinks the within-group variance, PWT zeroes the
group-coherent bias.

Run:  python examples/error_anatomy.py
"""

from repro.core import DeployConfig, Deployer, PWTConfig
from repro.data import Dataset, synthetic_digits
from repro.eval import analyze_deployment
from repro.nn.models import LeNet
from repro.nn.optim import Adam
from repro.nn.trainer import evaluate_accuracy, train_classifier


def main(seed: int = 0) -> None:
    print("Training LeNet on synthetic digits...")
    images, labels = synthetic_digits(1600, rng=seed)
    train, test = Dataset(images, labels).split(0.8, rng=seed + 1)
    model = LeNet(rng=seed)
    optimizer = Adam(model.parameters(), lr=1e-3, weight_decay=5e-4)
    train_classifier(model, train, epochs=5, batch_size=64,
                     optimizer=optimizer, rng=seed + 2)

    for method in ("plain", "vawo*", "vawo*+pwt"):
        config = DeployConfig.from_method(
            method, sigma=0.5, granularity=16,
            pwt=PWTConfig(epochs=6, lr=1.0, lr_decay=0.9))
        deployer = Deployer(model, train, config, rng=seed + 3)
        deployed = deployer.program(rng=seed + 4)
        acc = evaluate_accuracy(deployed, test)
        print(f"\n=== {method}  (accuracy {acc:.2%}) ===")
        header = (f"{'layer':<16}{'RMS err':>9}{'grp bias':>10}"
                  f"{'within':>8}{'|b| avg':>9}{'comp':>6}")
        print(header)
        print("-" * len(header))
        for s in analyze_deployment(deployed):
            print(f"{s.path:<16}{s.rms_error:>9.1f}{s.group_bias_rms:>10.1f}"
                  f"{s.within_group_rms:>8.1f}{s.offset_magnitude:>9.1f}"
                  f"{s.complement_fraction:>6.0%}")
    print("\nReading the table: 'grp bias' is the error component a shared")
    print("offset can remove (PWT drives it to ~0); 'within' is what")
    print("remains at this sharing granularity (VAWO* makes it small by")
    print("writing low-variance states).")


if __name__ == "__main__":
    main()
