"""Quickstart: protect a LeNet from RRAM variation with digital offsets.

Trains LeNet on the synthetic digit task, then deploys it onto the
simulated 128x128 RRAM crossbar under heavy cycle-to-cycle variation
(sigma = 0.5) four ways — the plain scheme and the paper's three
techniques — and prints the recovered accuracy of each.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.core import DeployConfig, Deployer, PWTConfig
from repro.data import Dataset, synthetic_digits
from repro.eval import evaluate_deployment, ideal_accuracy
from repro.nn.models import LeNet
from repro.nn.optim import Adam
from repro.nn.trainer import evaluate_accuracy, train_classifier


def main(seed: int = 0) -> None:
    # ------------------------------------------------------------------
    # 1. Data and float training (the substrate the paper assumes).
    # ------------------------------------------------------------------
    print("Synthesising digits and training LeNet...")
    images, labels = synthetic_digits(1600, rng=seed)
    data = Dataset(images, labels)
    train, test = data.split(0.8, rng=seed + 1)

    model = LeNet(rng=seed)
    optimizer = Adam(model.parameters(), lr=1e-3, weight_decay=5e-4)
    train_classifier(model, train, epochs=5, batch_size=64,
                     optimizer=optimizer, rng=seed + 2)
    float_acc = evaluate_accuracy(model, test)
    print(f"  float accuracy: {float_acc:.2%}\n")

    # ------------------------------------------------------------------
    # 2. Deploy onto the crossbar under variation, one method at a time.
    # ------------------------------------------------------------------
    sigma, granularity = 0.5, 16
    pwt = PWTConfig(epochs=8, lr=1.0, lr_decay=0.9)
    print(f"Deploying with sigma={sigma}, SLC cells, m={granularity}:")
    header = f"  {'method':<12} {'accuracy':>10} {'std':>8}"
    print(header)
    print("  " + "-" * (len(header) - 2))
    for method in ("plain", "vawo*", "pwt", "vawo*+pwt"):
        config = DeployConfig.from_method(method, sigma=sigma,
                                          granularity=granularity, pwt=pwt)
        deployer = Deployer(model, train, config, rng=seed + 3)
        if method == "plain":
            ideal = ideal_accuracy(deployer, test)
        result = evaluate_deployment(deployer, test, n_trials=3,
                                     rng=seed + 4)
        print(f"  {method:<12} {result.mean:>9.2%} {result.std:>8.2%}")
    print(f"  {'ideal':<12} {ideal:>9.2%}")
    print("\nThe plain scheme collapses; VAWO*+PWT recovers near-ideal "
          "accuracy\nwhile using a single crossbar per weight matrix.")


if __name__ == "__main__":
    main()
