"""Motivation demo: repeated programming vs one write + digital offsets.

The paper's introduction argues that iterative write-and-verify
programming ([5], [6]) can hit a target resistance window but costs many
programming pulses — wearing the device out — while the digital offset
needs exactly one write and one read-back per device. This example
quantifies that trade-off on the same device model: programming pulses
consumed by write-verify at several tolerances vs the single-write
offset flow, and the weight error each approach leaves behind.

Run:  python examples/write_verify_vs_offset.py
"""

import numpy as np

from repro.core.offsets import OffsetPlan
from repro.device import (DeviceModel, VariationModel, write_verify)
from repro.device.cell import SLC
from repro.utils.rng import make_rng


def main(seed: int = 0) -> None:
    sigma = 0.5
    device = DeviceModel(SLC, VariationModel(sigma), n_bits=8)
    rng = make_rng(seed)
    weights = np.clip(np.round(rng.normal(128, 30, size=(128, 16))),
                      0, 255).astype(np.int64)

    print(f"Target: a 128x16 weight matrix, lognormal CCV sigma={sigma}\n")

    # ------------------------------------------------------------------
    # Write-and-verify at several tolerances.
    # ------------------------------------------------------------------
    print("Write-and-verify (re-program until within tolerance):")
    header = (f"  {'tolerance':>10} {'pulses/device':>14} "
              f"{'converged':>10} {'RMS error':>10}")
    print(header)
    print("  " + "-" * (len(header) - 2))
    for tol in (0.30, 0.15, 0.08):
        res = write_verify(device, weights, rel_tolerance=tol,
                           max_pulses=30, rng=seed + 1)
        rms = np.sqrt(((res.crw - weights) ** 2).mean())
        print(f"  {tol:>10.2f} {res.pulses.mean():>14.2f} "
              f"{res.convergence_rate:>9.1%} {rms:>10.2f}")

    # ------------------------------------------------------------------
    # Digital offset: VAWO picks low-variance CTWs, one write, one read,
    # then the registers absorb the measured group error (PWT's init).
    # ------------------------------------------------------------------
    from repro.core.vawo import run_vawo
    from repro.device.lut import build_lut_analytic

    plan = OffsetPlan(rows=128, cols=16, granularity=16)
    lut = build_lut_analytic(device)
    assignment = run_vawo(weights, np.ones_like(weights, dtype=float),
                          lut, plan, use_complement=True)
    crw = device.program(assignment.ctw, rng=seed + 2)   # ONE write
    sign = 1.0 - 2.0 * plan.expand(assignment.complement.astype(float))
    const = (1.0 - sign) / 2.0 * 255
    desired = sign * (weights - const) - crw             # read-back knowledge
    registers = plan.group_reduce_weights(desired, op="mean")
    compensated = sign * (crw + plan.expand(registers)) + const
    rms = np.sqrt(((compensated - weights) ** 2).mean())
    print("\nDigital offset (this paper, VAWO* + post-writing registers):")
    print(f"  {'pulses/device':>14}: 1.00   (single write + read-back)")
    print(f"  {'registers':>14}: {plan.n_registers} "
          f"(one per {plan.granularity} weights)")
    print(f"  {'RMS error':>14}: {rms:.2f}")
    print("\nWrite-verify trades device lifetime for accuracy; the digital")
    print("offset gets its compensation digitally, writing each cell once.")


if __name__ == "__main__":
    main()
