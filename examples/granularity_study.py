"""Design-space study: sharing granularity vs accuracy vs hardware cost.

The sharing granularity m is the paper's central design knob: smaller m
means more digital-offset registers (better compensation, more area),
larger m means fewer registers but also bigger per-column adders. This
example sweeps m, measures deployed accuracy on LeNet, and pairs each
point with the ISAAC tile overhead model of Table II — the full
accuracy/cost trade-off a designer would examine.

Run:  python examples/granularity_study.py
"""

from repro.arch import model_latency, tile_overhead
from repro.core import DeployConfig, Deployer, PWTConfig
from repro.data import Dataset, synthetic_digits
from repro.eval import evaluate_deployment
from repro.nn.models import LeNet
from repro.nn.optim import Adam
from repro.nn.trainer import train_classifier


def main(seed: int = 0) -> None:
    print("Training LeNet on synthetic digits...")
    images, labels = synthetic_digits(1600, rng=seed)
    train, test = Dataset(images, labels).split(0.8, rng=seed + 1)
    model = LeNet(rng=seed)
    optimizer = Adam(model.parameters(), lr=1e-3, weight_decay=5e-4)
    train_classifier(model, train, epochs=5, batch_size=64,
                     optimizer=optimizer, rng=seed + 2)

    sigma = 0.5
    print(f"\nGranularity sweep at sigma={sigma} (VAWO*+PWT, SLC):\n")
    header = (f"{'m':>5} {'accuracy':>10} {'registers':>10} "
              f"{'tile area oh':>13} {'tile power oh':>14} {'VMM us':>8}")
    print(header)
    print("-" * len(header))
    for m in (16, 32, 64, 128):
        config = DeployConfig.from_method(
            "vawo*+pwt", sigma=sigma, granularity=m,
            pwt=PWTConfig(epochs=8, lr=1.0, lr_decay=0.9))
        deployer = Deployer(model, train, config, rng=seed + 3)
        result = evaluate_deployment(deployer, test, n_trials=2,
                                     rng=seed + 4)
        overhead = tile_overhead(m)
        latency_us = model_latency(
            [rows for rows, _ in deployer.layer_matrix_shapes()], m) / 1e3
        print(f"{m:>5} {result.mean:>9.2%} {deployer.total_registers():>10} "
              f"{overhead.area_overhead_fraction:>12.1%} "
              f"{overhead.power_overhead_fraction:>13.1%} "
              f"{latency_us:>8.1f}")
    print("\nFiner granularity buys accuracy with registers and extra "
          "cycles;\ncoarser granularity shrinks the register file but "
          "grows the adder trees\n(Table II's trend) while completing a "
          "VMM in fewer cycles.")


if __name__ == "__main__":
    main()
