"""Fig. 5(c)-style study: MLC robustness across variation magnitudes.

Deploys a slim ResNet-18 on 2-bit MLC crossbars with the combined
VAWO*+PWT scheme and sweeps the lognormal sigma, reproducing the shape
of the paper's Fig. 5(c): accuracy degrades gracefully with sigma and
finer sharing granularity stays ahead of coarser.

Uses the cached benchmark workload if one exists (built by the
benchmark suite), otherwise trains a fresh slim ResNet (several
minutes on CPU).

Run:  python examples/mlc_sigma_sweep.py
"""

from repro.core import DeployConfig, Deployer, PWTConfig
from repro.device.cell import MLC2
from repro.eval import build_workload, evaluate_deployment, ideal_accuracy


def main(seed: int = 0) -> None:
    print("Building (or loading cached) slim ResNet-18 workload...")
    wl = build_workload("resnet18", preset="quick", seed=seed)
    print(f"  float accuracy: {wl.float_accuracy:.2%}\n")

    sigmas = (0.2, 0.5, 1.0)
    granularities = (16, 128)
    # Deep networks need the long, decayed offset-training schedule
    # (see DESIGN.md §4b) — expect ~2 minutes per grid cell on one CPU.
    pwt = PWTConfig(epochs=8, lr=1.0, lr_decay=0.9)

    print("VAWO*+PWT on 2-bit MLC crossbars:\n")
    header = "  sigma " + "".join(f"{'m=' + str(m):>12}" for m in granularities)
    print(header)
    print("  " + "-" * (len(header) - 2))
    for sigma in sigmas:
        cells = []
        for m in granularities:
            config = DeployConfig.from_method(
                "vawo*+pwt", sigma=sigma, cell=MLC2, granularity=m, pwt=pwt,
                bn_recalibrate=True)
            deployer = Deployer(wl.model, wl.train, config, rng=seed + 5)
            result = evaluate_deployment(deployer, wl.test, n_trials=1,
                                         rng=seed + 6)
            cells.append(f"{result.mean:>11.2%}")
        print(f"  {sigma:>5.1f} " + " ".join(cells))

    config = DeployConfig.from_method("plain", sigma=0.5, cell=MLC2)
    deployer = Deployer(wl.model, wl.train, config, rng=seed + 5)
    print(f"\n  ideal (quantized, no variation): "
          f"{ideal_accuracy(deployer, wl.test):.2%}")
    print("  Accuracy falls with sigma; m=16 degrades more gracefully "
          "than m=128,\n  matching the paper's Fig. 5(c) trends.")


if __name__ == "__main__":
    main()
