"""Future-work study: combining DVA training with digital offsets.

The paper's conclusion notes its method "is orthogonal to many existing
training-based methods such as DVA. Our future work will explore how to
combine them together." This example runs that combination: train LeNet
both normally and with DVA's variation-injected training, then deploy
each through the plain scheme and through VAWO*+PWT. The combined
DVA + digital-offset deployment should be the most robust of all four.

Run:  python examples/dva_plus_offsets.py
"""

from repro.baselines.dva import DVAConfig, train_dva
from repro.core import DeployConfig, Deployer, PWTConfig
from repro.data import Dataset, synthetic_digits
from repro.eval import evaluate_deployment
from repro.nn.models import LeNet
from repro.nn.optim import Adam
from repro.nn.trainer import evaluate_accuracy, train_classifier


def main(seed: int = 0) -> None:
    sigma = 0.7                      # heavier variation than Fig. 5(a)
    images, labels = synthetic_digits(1600, rng=seed)
    train, test = Dataset(images, labels).split(0.8, rng=seed + 1)

    print("Training LeNet twice: standard and DVA (noise-injected)...")
    standard = LeNet(rng=seed)
    opt = Adam(standard.parameters(), lr=1e-3, weight_decay=5e-4)
    train_classifier(standard, train, epochs=5, batch_size=64,
                     optimizer=opt, rng=seed + 2)

    dva = LeNet(rng=seed)
    train_dva(dva, train, DVAConfig(sigma=sigma, epochs=5, lr=1e-3),
              rng=seed + 2)

    print(f"  standard float accuracy: "
          f"{evaluate_accuracy(standard, test):.2%}")
    print(f"  DVA float accuracy:      {evaluate_accuracy(dva, test):.2%}\n")

    print(f"Deployment accuracy at sigma={sigma} (SLC, m=16, 3 cycles):\n")
    header = f"  {'training':<10} {'plain':>9} {'vawo*+pwt':>11}"
    print(header)
    print("  " + "-" * (len(header) - 2))
    for name, model in (("standard", standard), ("DVA", dva)):
        accs = []
        for method in ("plain", "vawo*+pwt"):
            config = DeployConfig.from_method(
                method, sigma=sigma, granularity=16,
                pwt=PWTConfig(epochs=8, lr=1.0, lr_decay=0.9))
            deployer = Deployer(model, train, config, rng=seed + 3)
            result = evaluate_deployment(deployer, test, n_trials=3,
                                         rng=seed + 4)
            accs.append(result.mean)
        print(f"  {name:<10} {accs[0]:>8.2%} {accs[1]:>11.2%}")
    print("\nThe techniques compose: DVA hardens the weights, the digital")
    print("offsets absorb the realised per-cycle deviation on top.")


if __name__ == "__main__":
    main()
