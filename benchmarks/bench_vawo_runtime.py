"""Section III-B runtime claim: VAWO is a one-time, cheap process.

The paper reports VAWO for LeNet taking 19.7 s — only 4.3% of its
training time. We measure both on our substrate and check the ratio
claim (VAWO well under the training time); absolute seconds differ with
hardware, the *ratio* is the reproducible quantity.
"""

import tempfile
import time

from _common import preset, report

import repro.obs as obs
from repro.cache import CacheStore
from repro.core.pipeline import DeployConfig, Deployer
from repro.eval.experiments import _SPECS, build_workload
from repro.obs import metrics as obs_metrics


def run():
    wl = build_workload("lenet", preset=preset(), seed=0)
    spec = _SPECS["lenet"][preset()]

    # Measure (re-)training time for the workload's configured epochs.
    from repro.nn.models import LeNet
    from repro.nn.optim import Adam
    from repro.nn.trainer import train_classifier

    model = LeNet(rng=1)
    opt = Adam(model.parameters(), lr=spec.lr,
               weight_decay=spec.weight_decay)
    t0 = time.perf_counter()
    train_classifier(model, wl.train, epochs=spec.epochs,
                     batch_size=spec.batch_size, optimizer=opt, rng=2)
    train_s = time.perf_counter() - t0

    # Measure the VAWO* stage alone (gradient estimation + solver)
    # against a fresh cold artifact store, so the timing is real work
    # rather than a replay from a warm default cache. The counters
    # recorded in the sidecar prove the store started cold (zero hits).
    cfg = DeployConfig.from_method("vawo*", sigma=0.5, granularity=16)
    was_on = obs.enabled()
    obs.enable()
    before = obs_metrics.REGISTRY.snapshot()["counters"]
    with tempfile.TemporaryDirectory() as tmp:
        t0 = time.perf_counter()
        Deployer(wl.model, wl.train, cfg, rng=3, cache=CacheStore(tmp))
        vawo_s = time.perf_counter() - t0
    after = obs_metrics.REGISTRY.snapshot()["counters"]
    if not was_on:
        obs.disable()
    cache_counters = {name: after[name] - before.get(name, 0.0)
                      for name in after if name.startswith("cache.")}

    ratio = vawo_s / train_s
    lines = ["Section III-B — VAWO runtime vs training time (LeNet)",
             f"training: {train_s:8.1f} s",
             f"VAWO*:    {vawo_s:8.1f} s  (cold artifact store)",
             f"ratio:    {ratio:8.1%}   (paper: 4.3%)"]
    report("vawo_runtime", lines,
           data={"train_s": train_s, "vawo_s": vawo_s, "ratio": ratio,
                 "cache_counters": cache_counters})
    return train_s, vawo_s


def test_vawo_runtime(benchmark):
    train_s, vawo_s = benchmark.pedantic(run, rounds=1, iterations=1)
    # The reproducible claim: VAWO costs a small fraction of training.
    assert vawo_s < 0.5 * train_s
