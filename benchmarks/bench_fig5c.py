"""Fig. 5(c): ResNet-18 on 2-bit MLCs, VAWO*+PWT, sigma sweep.

Paper reference points: accuracy > 90% at m=16 up to sigma = 0.7; at
m=128 still close to 80% at sigma = 1.0. The claims under test: the
combined scheme degrades gracefully in sigma, finer granularity stays
ahead, and MLC cells (noisier per cell) still work.
"""

from _common import fmt_pct, jobs, preset, report, trials

from repro.eval.experiments import run_fig5c

PAPER = {(0.5, 16): 0.93, (0.7, 16): 0.90, (1.0, 128): 0.80}


def run():
    if preset() == "full":
        sigmas = (0.2, 0.4, 0.5, 0.7, 1.0)
        granularities = (16, 64, 128)
    else:
        sigmas = (0.2, 0.5, 1.0)
        granularities = (16,)
    rows = run_fig5c(preset=preset(), sigmas=sigmas,
                     granularities=granularities, n_trials=trials(),
                     jobs=jobs())
    lines = ["Fig. 5(c) — ResNet-18 (slim), 2-bit MLC, VAWO*+PWT",
             f"{'sigma':>6}{'m':>5}{'ours':>9}{'paper':>9}"]
    for r in rows:
        paper = PAPER.get((r.sigma, r.granularity))
        paper_s = fmt_pct(paper) if paper is not None else "      -"
        lines.append(f"{r.sigma:>6.1f}{r.granularity:>5}"
                     f"{fmt_pct(r.mean_accuracy):>9}{paper_s:>9}")
    report("fig5c", lines, data=rows)
    return rows


def test_fig5c(benchmark):
    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    by = {(r.sigma, r.granularity): r.mean_accuracy for r in rows}
    sigmas = sorted({r.sigma for r in rows})
    ms = sorted({r.granularity for r in rows})
    # Graceful degradation with sigma at the finest granularity.
    assert by[(sigmas[0], ms[0])] >= by[(sigmas[-1], ms[0])] - 0.05
    # Finer granularity never clearly loses to coarser (full preset
    # sweeps several granularities; quick runs m=16 only).
    for s in sigmas:
        assert by[(s, ms[0])] >= by[(s, ms[-1])] - 0.08
    # Still functional (far above chance) at low sigma.
    assert by[(sigmas[0], ms[0])] > 0.5
