"""Fig. 5(a): LeNet accuracy, all methods x sharing granularities.

Paper setting: LeNet/MNIST, SLC cells, sigma = 0.5, m in {16, 64, 128},
5 programming cycles averaged. Paper reference points (read off the
figure): plain 12.05%, VAWO(m=16) 88.48%, VAWO*(m=16) 95.84%,
PWT ~ ideal, VAWO*+PWT = ideal (99.17%).

We reproduce the *shape*: plain collapses near chance, each technique
recovers progressively more, the combined scheme approaches the ideal
line, and coarser granularity degrades VAWO more than VAWO*+PWT.
"""

from _common import fmt_pct, jobs, preset, report, trials

from repro.eval.experiments import run_fig5_accuracy

PAPER = {
    ("plain", 16): 0.1205, ("vawo", 16): 0.8848, ("vawo*", 16): 0.9584,
    ("pwt", 16): 0.99, ("vawo*+pwt", 16): 0.9917,
    ("plain", 128): 0.1205, ("vawo", 128): 0.80, ("vawo*", 128): 0.95,
    ("pwt", 128): 0.985, ("vawo*+pwt", 128): 0.9917,
}
PAPER_IDEAL = 0.9917


def run():
    granularities = (16, 64, 128) if preset() == "full" else (16, 128)
    rows = run_fig5_accuracy("lenet", preset=preset(),
                             granularities=granularities,
                             sigma=0.5, n_trials=trials(), jobs=jobs())
    lines = ["Fig. 5(a) — LeNet, SLC, sigma=0.5",
             f"{'method':<12}{'m':>5}{'ours':>9}{'paper':>9}"]
    for r in rows:
        paper = PAPER.get((r.method, r.granularity))
        paper_s = fmt_pct(paper) if paper is not None else "      -"
        lines.append(f"{r.method:<12}{r.granularity:>5}"
                     f"{fmt_pct(r.mean_accuracy):>9}{paper_s:>9}")
    lines.append(f"{'ideal':<12}{'':>5}{fmt_pct(rows[0].ideal_accuracy):>9}"
                 f"{fmt_pct(PAPER_IDEAL):>9}")
    report("fig5a", lines, data=rows)
    return rows


def test_fig5a(benchmark):
    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    by = {(r.method, r.granularity): r.mean_accuracy for r in rows}
    ideal = rows[0].ideal_accuracy
    # Shape assertions (the paper's qualitative claims).
    assert by[("plain", 16)] < 0.35                      # plain collapses
    assert by[("vawo*", 16)] >= by[("vawo", 16)] - 0.05  # complement helps
    assert by[("vawo*+pwt", 16)] >= ideal - 0.05         # combined ~ ideal
    assert by[("vawo*+pwt", 16)] >= by[("plain", 16)] + 0.4
