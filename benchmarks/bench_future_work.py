"""Extensions beyond the paper's evaluation.

1. The conclusion's stated future work: combining DVA (variation-aware
   training) with the digital-offset techniques. We measure all four
   cells of the {standard, DVA-trained} x {plain, VAWO*+PWT} grid.
2. BatchNorm recalibration: a purely digital post-deployment step the
   paper does not consider, ablated on the residual workload.
"""

import numpy as np

from _common import fmt_pct, preset, report, trials

from repro.baselines.dva import DVAConfig, train_dva
from repro.core import (DeployConfig, Deployer, PWTConfig,
                        recalibrate_batchnorm)
from repro.eval.accuracy import evaluate_deployment
from repro.eval.experiments import build_workload
from repro.nn.trainer import evaluate_accuracy


def _dva_train(sigma: float):
    def train(model, data, spec, rng):
        cfg = DVAConfig(sigma=sigma, epochs=spec.epochs,
                        batch_size=spec.batch_size, lr=spec.lr,
                        weight_decay=spec.weight_decay)
        train_dva(model, data, cfg, rng=rng)
    train.__name__ = f"dva{sigma}"
    return train


def run_combination():
    sigma = 0.7
    standard = build_workload("lenet", preset=preset(), seed=0)
    dva = build_workload("lenet", preset=preset(), seed=0,
                         train_override=_dva_train(sigma))
    grid = {}
    for train_name, wl in (("standard", standard), ("dva", dva)):
        for method in ("plain", "vawo*+pwt"):
            cfg = DeployConfig.from_method(
                method, sigma=sigma, granularity=16,
                pwt=PWTConfig(epochs=2, lr=0.5, max_batches_per_epoch=20))
            deployer = Deployer(wl.model, wl.train, cfg, rng=1)
            grid[(train_name, method)] = evaluate_deployment(
                deployer, wl.test, n_trials=trials(), rng=2).mean
    lines = [f"Future work — DVA x digital offsets (LeNet, sigma={sigma})",
             f"{'training':<10}{'plain':>9}{'vawo*+pwt':>11}"]
    for t in ("standard", "dva"):
        lines.append(f"{t:<10}{fmt_pct(grid[(t, 'plain')]):>9}"
                     f"{fmt_pct(grid[(t, 'vawo*+pwt')]):>11}")
    report("future_work_dva", lines,
           data=[{"training": t, "method": m, "mean_accuracy": acc}
                 for (t, m), acc in grid.items()])
    return grid


def test_dva_combination(benchmark):
    grid = benchmark.pedantic(run_combination, rounds=1, iterations=1)
    # Offsets help regardless of how the network was trained.
    assert grid[("standard", "vawo*+pwt")] > grid[("standard", "plain")]
    assert grid[("dva", "vawo*+pwt")] > grid[("dva", "plain")]
    # DVA hardens the plain deployment.
    assert grid[("dva", "plain")] >= grid[("standard", "plain")] - 0.03
    # The combination is at least as good as offsets alone.
    assert grid[("dva", "vawo*+pwt")] >= \
        grid[("standard", "vawo*+pwt")] - 0.05


def run_bn_recalibration():
    wl = build_workload("resnet18", preset=preset(), seed=0)
    sigma = 0.5
    cfg = DeployConfig.from_method("vawo*", sigma=sigma, granularity=16)
    deployer = Deployer(wl.model, wl.train, cfg, rng=1)
    rows = {}
    accs_plain, accs_recal = [], []
    for t in range(trials()):
        deployed = deployer.program(rng=100 + t)
        accs_plain.append(evaluate_accuracy(deployed, wl.test))
        recalibrate_batchnorm(deployed, wl.train, n_batches=4, rng=3)
        accs_recal.append(evaluate_accuracy(deployed, wl.test))
    rows["without"] = float(np.mean(accs_plain))
    rows["with"] = float(np.mean(accs_recal))
    lines = [f"Extension — BatchNorm recalibration (ResNet slim, VAWO*, "
             f"sigma={sigma})",
             f"without recalibration {fmt_pct(rows['without'])}",
             f"with recalibration    {fmt_pct(rows['with'])}"]
    report("future_work_bnrecal", lines, data=rows)
    return rows


def test_bn_recalibration(benchmark):
    rows = benchmark.pedantic(run_bn_recalibration, rounds=1, iterations=1)
    # Digital recalibration never substantially hurts and usually helps.
    assert rows["with"] >= rows["without"] - 0.05
