"""Microbenchmarks of the library's computational kernels.

These are classic pytest-benchmark targets (many rounds, statistical
timing) for the hot paths: device programming, the VAWO solver, the
bit-accurate engine, and a crossbar-layer forward pass. They guard
against performance regressions rather than reproducing a paper number.

The engine and conv kernels run once per registered compute backend
(``reference``, ``vectorized`` and ``accel``); each (kernel, backend)
pair writes a ``kernels-<kernel>-<backend>.json`` sidecar whose
``elapsed_s`` is the measured mean, so the ``bench-regress`` gate
tracks every kernel set independently. Non-reference sidecars record
``speedup_vs_reference`` (and accel additionally
``speedup_vs_vectorized`` and its resolved ``accel.offload_tier``, so
history rows from BLAS-only environments are never gated against
numba/torch runs).
"""

import pytest
import numpy as np

from _common import report

from repro.backend import use_backend
from repro.core.offsets import OffsetPlan
from repro.core.vawo import run_vawo
from repro.device.cell import MLC2, SLC
from repro.device.lut import DeviceModel, build_lut_analytic
from repro.device.variation import VariationModel
from repro.nn import functional as F
from repro.nn.tensor import Tensor
from repro.xbar.engine import CrossbarEngine
from repro.utils.rng import make_rng

BACKENDS = ("reference", "vectorized", "accel")

#: Mean seconds per (kernel, backend), for the speedup sidecar fields.
_MEANS = {}


def _record(benchmark, kernel: str, backend: str) -> None:
    """Write the per-(kernel, backend) sidecar from the measured mean."""
    stats = getattr(benchmark, "stats", None)
    if stats is None:                      # --benchmark-disable run
        return
    mean = stats.stats.mean
    _MEANS[(kernel, backend)] = mean
    data = {"kernel": kernel, "backend": backend, "mean_s": mean}
    note = ""
    ref = _MEANS.get((kernel, "reference"))
    if backend != "reference" and ref:
        data["speedup_vs_reference"] = ref / mean
        note = f"  ({ref / mean:.1f}x vs reference)"
    if backend == "accel":
        from repro.backend import get_backend

        vec = _MEANS.get((kernel, "vectorized"))
        if vec:
            data["speedup_vs_vectorized"] = vec / mean
            note += f" ({vec / mean:.1f}x vs vectorized)"
        data["accel.offload_tier"] = get_backend("accel").offload_tier()
    report(f"kernels-{kernel}-{backend}",
           [f"{kernel} [{backend}]: mean {mean * 1e3:.3f} ms" + note],
           data=data, elapsed_s=mean)


def test_device_programming_128x128(benchmark):
    device = DeviceModel(MLC2, VariationModel(0.5), n_bits=8)
    values = make_rng(0).integers(0, 256, size=(128, 128))
    rng = make_rng(1)
    benchmark(device.program_cells, values, rng)


def test_lut_build_analytic(benchmark):
    device = DeviceModel(SLC, VariationModel(0.5), n_bits=8)
    benchmark(build_lut_analytic, device)


def test_vawo_solver_128x128(benchmark):
    rng = make_rng(0)
    device = DeviceModel(SLC, VariationModel(0.5), n_bits=8)
    lut = build_lut_analytic(device)
    plan = OffsetPlan(128, 128, 16)
    ntw = np.clip(np.round(rng.normal(128, 30, size=(128, 128))),
                  0, 255).astype(np.int64)
    grads = np.abs(rng.normal(size=(128, 128)))
    benchmark.pedantic(run_vawo, args=(ntw, grads, lut, plan),
                       kwargs=dict(use_complement=True),
                       rounds=3, iterations=1)


@pytest.mark.parametrize("backend", BACKENDS)
def test_bit_accurate_engine_forward(benchmark, backend):
    rng = make_rng(0)
    device = DeviceModel(MLC2, VariationModel(0.5), n_bits=8)
    plan = OffsetPlan(128, 32, 16)
    values = rng.integers(0, 256, size=(128, 32))
    engine = CrossbarEngine(
        cells=device.program_cells(values, rng), plan=plan,
        registers=np.zeros((plan.n_groups, 32)),
        complement=np.zeros((plan.n_groups, 32), dtype=bool),
        cell=MLC2, input_scale=1 / 255, weight_scale=0.01,
        weight_zero_point=128, backend=backend)
    x = rng.uniform(0, 1, size=(16, 128))
    # One warmup round so every backend's one-time setup (cached packed
    # operands, einsum path caches) is excluded from the steady-state
    # mean the regress gate tracks.
    benchmark.pedantic(engine.forward, args=(x,), rounds=3, iterations=1,
                       warmup_rounds=1)
    _record(benchmark, "engine-forward", backend)


@pytest.mark.parametrize("backend", BACKENDS)
def test_conv2d_float_forward(benchmark, backend):
    """The fast float conv path (im2col + shared matmul)."""
    rng = make_rng(0)
    x = Tensor(rng.normal(size=(8, 3, 32, 32)))
    w = Tensor(rng.normal(size=(16, 3, 3, 3)))
    with use_backend(backend):
        benchmark.pedantic(F.conv2d, args=(x, w),
                           kwargs=dict(stride=1, padding=1),
                           rounds=3, iterations=1)
    _record(benchmark, "conv2d-float", backend)


@pytest.mark.parametrize("backend", BACKENDS)
def test_conv_via_crossbar_engine(benchmark, backend):
    """Conv the way the paper runs it: im2col columns through the
    bit-accurate crossbar engine of the unrolled kernel matrix."""
    from repro.backend import get_backend

    rng = make_rng(0)
    c_in, kh, kw, f = 8, 3, 3, 16
    rows = c_in * kh * kw                                  # 72 wordlines
    device = DeviceModel(MLC2, VariationModel(0.5), n_bits=8)
    plan = OffsetPlan(rows, f, 8)
    values = rng.integers(0, 256, size=(rows, f))
    engine = CrossbarEngine(
        cells=device.program_cells(values, rng), plan=plan,
        registers=np.zeros((plan.n_groups, f)),
        complement=np.zeros((plan.n_groups, f), dtype=bool),
        cell=MLC2, input_scale=1 / 255, weight_scale=0.01,
        weight_zero_point=128, backend=backend)
    x = rng.uniform(0, 1, size=(4, c_in, 14, 14))

    def conv_on_crossbar():
        cols, oh, ow = get_backend(backend).im2col(x, kh, kw, 1, 1)
        flat = cols.transpose(0, 2, 1).reshape(-1, rows)   # (N*OH*OW, rows)
        return engine.forward(flat)

    benchmark.pedantic(conv_on_crossbar, rounds=3, iterations=1,
                       warmup_rounds=1)
    _record(benchmark, "conv-engine", backend)


def test_crossbar_layer_forward(benchmark):
    from repro.core.crossbar_layers import CrossbarLinear

    rng = make_rng(0)
    device = DeviceModel(SLC, VariationModel(0.5), n_bits=8)
    plan = OffsetPlan(400, 120, 16)
    values = rng.integers(0, 256, size=(400, 120))
    layer = CrossbarLinear(
        cells=device.program_cells(values, rng), plan=plan,
        registers=np.zeros((plan.n_groups, 120)),
        complement=np.zeros((plan.n_groups, 120), dtype=bool),
        cell=SLC, weight_bits=8, weight_scale=0.01, weight_zero_point=128)
    x = Tensor(rng.uniform(size=(64, 400)))
    benchmark(layer, x)


def test_write_verify_pulse_loop(benchmark):
    from repro.device.programming import write_verify

    device = DeviceModel(SLC, VariationModel(0.5), n_bits=8)
    values = make_rng(0).integers(0, 256, size=1000)
    benchmark.pedantic(write_verify, args=(device, values),
                       kwargs=dict(rng=make_rng(1)),
                       rounds=3, iterations=1)
