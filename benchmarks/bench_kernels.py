"""Microbenchmarks of the library's computational kernels.

These are classic pytest-benchmark targets (many rounds, statistical
timing) for the hot paths: device programming, the VAWO solver, the
bit-accurate engine, and a crossbar-layer forward pass. They guard
against performance regressions rather than reproducing a paper number.
"""

import numpy as np

from repro.core.offsets import OffsetPlan
from repro.core.vawo import run_vawo
from repro.device.cell import MLC2, SLC
from repro.device.lut import DeviceModel, build_lut_analytic
from repro.device.variation import VariationModel
from repro.nn.tensor import Tensor
from repro.xbar.engine import CrossbarEngine
from repro.utils.rng import make_rng


def test_device_programming_128x128(benchmark):
    device = DeviceModel(MLC2, VariationModel(0.5), n_bits=8)
    values = make_rng(0).integers(0, 256, size=(128, 128))
    rng = make_rng(1)
    benchmark(device.program_cells, values, rng)


def test_lut_build_analytic(benchmark):
    device = DeviceModel(SLC, VariationModel(0.5), n_bits=8)
    benchmark(build_lut_analytic, device)


def test_vawo_solver_128x128(benchmark):
    rng = make_rng(0)
    device = DeviceModel(SLC, VariationModel(0.5), n_bits=8)
    lut = build_lut_analytic(device)
    plan = OffsetPlan(128, 128, 16)
    ntw = np.clip(np.round(rng.normal(128, 30, size=(128, 128))),
                  0, 255).astype(np.int64)
    grads = np.abs(rng.normal(size=(128, 128)))
    benchmark.pedantic(run_vawo, args=(ntw, grads, lut, plan),
                       kwargs=dict(use_complement=True),
                       rounds=3, iterations=1)


def test_bit_accurate_engine_forward(benchmark):
    rng = make_rng(0)
    device = DeviceModel(MLC2, VariationModel(0.5), n_bits=8)
    plan = OffsetPlan(128, 32, 16)
    values = rng.integers(0, 256, size=(128, 32))
    engine = CrossbarEngine(
        cells=device.program_cells(values, rng), plan=plan,
        registers=np.zeros((plan.n_groups, 32)),
        complement=np.zeros((plan.n_groups, 32), dtype=bool),
        cell=MLC2, input_scale=1 / 255, weight_scale=0.01,
        weight_zero_point=128)
    x = rng.uniform(0, 1, size=(16, 128))
    benchmark.pedantic(engine.forward, args=(x,), rounds=3, iterations=1)


def test_crossbar_layer_forward(benchmark):
    from repro.core.crossbar_layers import CrossbarLinear

    rng = make_rng(0)
    device = DeviceModel(SLC, VariationModel(0.5), n_bits=8)
    plan = OffsetPlan(400, 120, 16)
    values = rng.integers(0, 256, size=(400, 120))
    layer = CrossbarLinear(
        cells=device.program_cells(values, rng), plan=plan,
        registers=np.zeros((plan.n_groups, 120)),
        complement=np.zeros((plan.n_groups, 120), dtype=bool),
        cell=SLC, weight_bits=8, weight_scale=0.01, weight_zero_point=128)
    x = Tensor(rng.uniform(size=(64, 400)))
    benchmark(layer, x)


def test_write_verify_pulse_loop(benchmark):
    from repro.device.programming import write_verify

    device = DeviceModel(SLC, VariationModel(0.5), n_bits=8)
    values = make_rng(0).integers(0, 256, size=1000)
    benchmark.pedantic(write_verify, args=(device, values),
                       kwargs=dict(rng=make_rng(1)),
                       rounds=3, iterations=1)
