"""Shared helpers for the benchmark suite.

Every bench regenerates one paper artifact (a table or figure), prints
a paper-vs-measured report, and writes it under ``benchmarks/results/``
so EXPERIMENTS.md can be assembled from the files. Each report now also
emits a machine-readable ``<name>.json`` sidecar (preset, trials,
elapsed wall-time, the report lines, structured measured numbers when
the bench provides them, and the obs metrics snapshot when recording is
on) so result trajectories can be tracked across commits without
parsing fixed-width text, and appends a one-line trend row (name,
elapsed wall-time, git SHA, timestamp) to ``results/history.jsonl`` —
the append-only log ``tools/bench_diff.py --trend`` reads to flag
multi-commit slow creep.

The ``REPRO_BENCH_PRESET`` environment variable selects the workload
scale: ``quick`` (default — minutes, the sizes CI runs) or ``full``
(the sizes EXPERIMENTS.md reports). ``REPRO_BENCH_JOBS`` selects the
parallel trial worker count (``0`` = one per core; results are
bit-identical across worker counts). ``REPRO_BACKEND`` selects the
compute backend the kernels dispatch to (``vectorized`` by default;
every backend is numerically interchangeable, so this too only moves
wall-clock time) — the active name is recorded in every sidecar.
"""

from __future__ import annotations

import dataclasses
import os
import time
from pathlib import Path

RESULTS_DIR = Path(__file__).parent / "results"

_T0 = time.perf_counter()

#: Sidecar schema version — bump when the JSON layout changes.
SIDECAR_SCHEMA = "repro.bench.sidecar/v1"

#: History row schema version (``results/history.jsonl``).
HISTORY_SCHEMA = "repro.bench.history/v1"

#: Append-only wall-time log, one JSON row per bench run. CI caches it
#: across builds so ``tools/bench_diff.py --trend`` can flag slow creep
#: that no single-commit comparison crosses the regression threshold on.
HISTORY_FILE = RESULTS_DIR / "history.jsonl"


def preset() -> str:
    value = os.environ.get("REPRO_BENCH_PRESET", "quick")
    if value not in ("quick", "full"):
        raise ValueError(f"REPRO_BENCH_PRESET must be quick|full, got {value}")
    return value


def trials() -> int:
    """Programming cycles to average over.

    The paper averages 5; the quick preset uses 1 so the whole suite
    regenerates every artifact in well under an hour on one CPU.
    """
    return 5 if preset() == "full" else 1


def jobs() -> int:
    """Parallel trial workers for the experiment runners.

    ``REPRO_BENCH_JOBS`` selects the worker count (``0`` — the default —
    means one per core, capped by the trial count; ``1`` forces serial).
    Trial results are bit-identical across worker counts
    (:mod:`repro.parallel`), so this only moves wall-clock time.
    """
    value = os.environ.get("REPRO_BENCH_JOBS", "0")
    try:
        parsed = int(value)
    except ValueError:
        raise ValueError(f"REPRO_BENCH_JOBS must be an integer, got {value!r}")
    if parsed < 0:
        raise ValueError(f"REPRO_BENCH_JOBS must be >= 0, got {parsed}")
    return parsed


def backend() -> str:
    """The compute backend the benched kernels dispatch to.

    Resolved through the :mod:`repro.backend` registry (override, then
    ``REPRO_BACKEND``, then the built-in default), so sidecars record
    which kernel set produced their timings.
    """
    from repro.backend import default_backend_name

    return default_backend_name()


def offload_tier():
    """The accel backend's resolved offload tier, or ``None``.

    ``None`` whenever the active backend is not ``accel`` — only accel
    timings vary with the offload environment, and ``bench_diff`` treats
    ``None`` as comparable with anything (pre-existing history rows
    carry no tier field).
    """
    if backend() != "accel":
        return None
    from repro.backend.accel import resolve_offload_tier

    return resolve_offload_tier()


def _jsonable(value):
    """Coerce dataclasses (rows) and mappings into JSON-able structures."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return dataclasses.asdict(value)
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    return value


def report(name: str, lines, data=None, elapsed_s=None) -> str:
    """Print a report; persist ``<name>.txt`` and a ``<name>.json`` sidecar.

    ``data`` (optional) is the bench's structured measured numbers —
    a list of row dataclasses/dicts or a mapping; it lands in the
    sidecar unchanged (dataclasses converted to dicts) so downstream
    tooling never has to parse the fixed-width text. ``elapsed_s``
    (optional) overrides the recorded wall time — microbenchmarks pass
    their measured mean so the ``bench-regress`` gate compares kernel
    time, not process uptime.
    """
    from repro.obs import enabled as obs_enabled
    from repro.obs import metrics as obs_metrics
    from repro.utils.serialization import save_json

    text = "\n".join(lines) if not isinstance(lines, str) else lines
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    sidecar = {
        "schema": SIDECAR_SCHEMA,
        "name": name,
        "preset": preset(),
        "trials": trials(),
        "jobs": jobs(),
        "backend": backend(),
        "offload_tier": offload_tier(),
        "elapsed_s": (float(elapsed_s) if elapsed_s is not None
                      else time.perf_counter() - _T0),
        "created_unix": time.time(),
        "lines": text.splitlines(),
        "data": _jsonable(data) if data is not None else None,
        "metrics": (obs_metrics.REGISTRY.snapshot()
                    if obs_enabled() else None),
    }
    save_json(RESULTS_DIR / f"{name}.json", sidecar)
    _append_history(sidecar)
    print(f"\n{text}")
    return text


def _append_history(sidecar: dict) -> None:
    """Append one trend row for this run to ``results/history.jsonl``.

    Rows carry only the fields the ``--trend`` gate groups and compares
    on (plus the git SHA and timestamp that localize a slowdown), so
    the file stays small enough to cache across hundreds of CI runs.
    """
    import json

    from repro.obs.manifest import git_revision

    row = {
        "schema": HISTORY_SCHEMA,
        "name": sidecar["name"],
        "preset": sidecar["preset"],
        "backend": sidecar["backend"],
        "offload_tier": sidecar["offload_tier"],
        "jobs": sidecar["jobs"],
        "trials": sidecar["trials"],
        "elapsed_s": sidecar["elapsed_s"],
        "git_sha": git_revision(),
        "created_unix": sidecar["created_unix"],
    }
    with open(HISTORY_FILE, "a") as fh:
        fh.write(json.dumps(row) + "\n")


def fmt_pct(x: float) -> str:
    return f"{x:7.2%}"
