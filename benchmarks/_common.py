"""Shared helpers for the benchmark suite.

Every bench regenerates one paper artifact (a table or figure), prints
a paper-vs-measured report, and writes it under ``benchmarks/results/``
so EXPERIMENTS.md can be assembled from the files.

The ``REPRO_BENCH_PRESET`` environment variable selects the workload
scale: ``quick`` (default — minutes, the sizes CI runs) or ``full``
(the sizes EXPERIMENTS.md reports).
"""

from __future__ import annotations

import os
from pathlib import Path

RESULTS_DIR = Path(__file__).parent / "results"


def preset() -> str:
    value = os.environ.get("REPRO_BENCH_PRESET", "quick")
    if value not in ("quick", "full"):
        raise ValueError(f"REPRO_BENCH_PRESET must be quick|full, got {value}")
    return value


def trials() -> int:
    """Programming cycles to average over.

    The paper averages 5; the quick preset uses 1 so the whole suite
    regenerates every artifact in well under an hour on one CPU.
    """
    return 5 if preset() == "full" else 1


def report(name: str, lines) -> str:
    """Print a report and persist it to benchmarks/results/<name>.txt."""
    text = "\n".join(lines) if not isinstance(lines, str) else lines
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    print(f"\n{text}")
    return text


def fmt_pct(x: float) -> str:
    return f"{x:7.2%}"
