"""Artifact-cache effectiveness: cold vs warm Deployer construction.

Runs the noise-independent preparation of a Fig. 5-style sweep (every
method at two granularities) twice against one artifact store. The
first pass is cold — every stage computes and writes; the second is
warm — every stage should replay from disk. Two sidecars
(``cache_cold.json`` / ``cache_warm.json``) land in the bench-regress
gate, each carrying the per-stage span-time breakdown and the cache
hit/miss counters for its state, so a regression in either the compute
path or the replay path is caught separately.

The reproducible claim: warm construction is at least 5x faster than
cold (the acceptance floor; in practice it is far higher), while both
produce bit-identical deployments (asserted by the test suite's
sweep-parity tests, not here).
"""

import tempfile
import time

from _common import preset, report

import repro.obs as obs
from repro.cache import CacheStore
from repro.core.pipeline import DeployConfig, Deployer
from repro.eval.experiments import _default_pwt, build_workload
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace

METHODS = ("plain", "vawo", "vawo*", "pwt", "vawo*+pwt")
GRANULARITIES = (16, 64)
STAGES = ("deploy.lut", "deploy.quantize", "deploy.calibrate",
          "deploy.gradients", "deploy.vawo")


def _sweep(wl, store, seed=0):
    """Construct one Deployer per sweep point; total wall seconds."""
    elapsed = 0.0
    for m in GRANULARITIES:
        for method in METHODS:
            cfg = DeployConfig.from_method(
                method, sigma=0.5, granularity=m,
                pwt=_default_pwt(preset()), bn_recalibrate=True)
            t0 = time.perf_counter()
            Deployer(wl.model, wl.train, cfg, rng=seed + 10, cache=store)
            elapsed += time.perf_counter() - t0
    return elapsed


def _measured_pass(wl, store):
    """One sweep pass under obs: (elapsed_s, per-stage s, cache counters)."""
    was_on = obs.enabled()
    obs.enable()
    obs.reset()
    try:
        elapsed = _sweep(wl, store)
        stages = {name: 0.0 for name in STAGES}
        for record in obs_trace.TRACER.records():
            if record and record.get("name") in stages \
                    and record.get("duration_s") is not None:
                stages[record["name"]] += float(record["duration_s"])
        counters = obs_metrics.REGISTRY.snapshot()["counters"]
        cache_counters = {name: value for name, value in counters.items()
                         if name.startswith("cache.")}
    finally:
        obs.reset()
        if not was_on:
            obs.disable()
    return elapsed, stages, cache_counters


def run():
    wl = build_workload("lenet", preset=preset(), seed=0)
    with tempfile.TemporaryDirectory() as tmp:
        store = CacheStore(tmp)
        cold_s, cold_stages, cold_counters = _measured_pass(wl, store)
        warm_s, warm_stages, warm_counters = _measured_pass(wl, store)

    speedup = cold_s / warm_s if warm_s > 0 else float("inf")
    grid = len(METHODS) * len(GRANULARITIES)
    for state, elapsed, stages, counters in (
            ("cold", cold_s, cold_stages, cold_counters),
            ("warm", warm_s, warm_stages, warm_counters)):
        lines = [f"Artifact cache — {state} Deployer construction, "
                 f"fig5-style sweep ({grid} points, lenet)",
                 f"total:    {elapsed:8.3f} s",
                 *(f"{name}: {seconds:8.3f} s"
                   for name, seconds in stages.items()),
                 f"hits:     {counters.get('cache.hits', 0):8.0f}   "
                 f"misses: {counters.get('cache.misses', 0):8.0f}"]
        if state == "warm":
            lines.append(f"speedup:  {speedup:8.1f}x over cold "
                         f"(acceptance floor: 5x)")
        report(f"cache_{state}", lines,
               data={"state": state, "sweep_points": grid,
                     "stages": stages, "cache_counters": counters,
                     "speedup_over_cold": (speedup if state == "warm"
                                           else None)},
               elapsed_s=elapsed)
    return cold_s, warm_s


def test_cache_speedup(benchmark):
    cold_s, warm_s = benchmark.pedantic(run, rounds=1, iterations=1)
    # The acceptance claim: warm-cache construction >= 5x faster.
    assert warm_s * 5 <= cold_s
