"""Ablations of the design choices DESIGN.md §5 calls out.

Each ablation isolates one knob on the LeNet workload:

* LUT source — Monte-Carlo statistical testing (the paper's procedure)
  vs the closed-form moments, and sample-count sensitivity;
* offset register bit-width — 8-bit (paper) vs narrower;
* weight complement — on/off (the VAWO -> VAWO* delta);
* bias tolerance — how strictly Eq. 6 is enforced;
* ADC resolution — ideal vs finite-bit readout on the bit-accurate
  engine.
"""

import numpy as np

from _common import fmt_pct, preset, report, trials

from repro.core.pipeline import DeployConfig, Deployer
from repro.eval.accuracy import evaluate_deployment
from repro.eval.experiments import build_workload
from repro.utils.rng import make_rng


def _acc(wl, **config_kwargs):
    n_trials = config_kwargs.pop("n_trials", None)
    cfg = DeployConfig.from_method(config_kwargs.pop("method", "vawo*"),
                                   sigma=0.5, granularity=16,
                                   **config_kwargs)
    deployer = Deployer(wl.model, wl.train, cfg, rng=0)
    return evaluate_deployment(deployer, wl.test,
                               n_trials=n_trials or trials(), rng=1).mean


def run():
    wl = build_workload("lenet", preset=preset(), seed=0)
    lines = ["Ablations — LeNet, SLC, sigma=0.5, m=16, VAWO* unless noted"]

    # 1. LUT source.
    analytic = _acc(wl, lut_source="analytic")
    mc_small = _acc(wl, lut_source="monte_carlo", lut_k_sets=4,
                    lut_j_cycles=4)
    mc_large = _acc(wl, lut_source="monte_carlo", lut_k_sets=32,
                    lut_j_cycles=32)
    lines += ["", "LUT source:",
              f"  analytic moments      {fmt_pct(analytic)}",
              f"  Monte-Carlo 4x4       {fmt_pct(mc_small)}",
              f"  Monte-Carlo 32x32     {fmt_pct(mc_large)}"]

    # 2. Offset register bit-width.
    widths = {}
    for bits in (4, 6, 8):
        widths[bits] = _acc(wl, offset_bits=bits)
    lines += ["", "Offset register width:"]
    lines += [f"  {b}-bit registers       {fmt_pct(a)}"
              for b, a in widths.items()]

    # 3. Weight complement (VAWO vs VAWO*). This comparison sits where
    # single-cycle noise is largest, so it always averages >= 4 cycles.
    no_comp = _acc(wl, method="vawo", n_trials=max(trials(), 4))
    comp = _acc(wl, method="vawo*", n_trials=max(trials(), 4))
    lines += ["", "Weight complement:",
              f"  VAWO  (off)           {fmt_pct(no_comp)}",
              f"  VAWO* (on)            {fmt_pct(comp)}"]

    # 4. Bias tolerance (Eq. 6 strictness).
    tols = {}
    for tol in (1.0, 2.0, 8.0):
        tols[tol] = _acc(wl, bias_tolerance=tol)
    lines += ["", "Eq. 6 bias tolerance:"]
    lines += [f"  tol={t:<4}              {fmt_pct(a)}"
              for t, a in tols.items()]

    out = dict(analytic=analytic, mc_small=mc_small, mc_large=mc_large,
               widths=widths, no_comp=no_comp, comp=comp, tols=tols)
    report("ablations", lines, data=out)
    return out


def test_ablations(benchmark):
    out = benchmark.pedantic(run, rounds=1, iterations=1)
    # A well-sampled Monte-Carlo LUT performs like the analytic one.
    assert abs(out["mc_large"] - out["analytic"]) < 0.2
    # Wider offset registers never hurt.
    assert out["widths"][8] >= out["widths"][4] - 0.05
    # The complement enhancement helps (the paper's VAWO -> VAWO* gap);
    # tolerance covers residual programming-cycle noise in the means.
    assert out["comp"] >= out["no_comp"] - 0.08


def test_adc_resolution_ablation(benchmark):
    """Finite ADC on the bit-accurate engine: enough bits ~ ideal."""
    from repro.core.offsets import OffsetPlan
    from repro.device.cell import MLC2
    from repro.device.lut import DeviceModel
    from repro.device.variation import VariationModel
    from repro.xbar.adc import ADC
    from repro.xbar.engine import CrossbarEngine

    def run_adc():
        rng = make_rng(0)
        device = DeviceModel(MLC2, VariationModel(0.3), n_bits=8)
        plan = OffsetPlan(128, 16, 16)
        values = rng.integers(0, 256, size=(128, 16))
        cells = device.program_cells(values, rng)
        x = rng.uniform(0, 1, size=(8, 128))
        common = dict(cells=cells, plan=plan,
                      registers=np.zeros((plan.n_groups, 16)),
                      complement=np.zeros((plan.n_groups, 16), dtype=bool),
                      cell=MLC2, input_scale=1 / 255, weight_scale=0.01,
                      weight_zero_point=128)
        ideal = CrossbarEngine(**common).forward(x)
        errs = {}
        full_scale = 16.0 * 3      # m wordlines x max cell conductance
        for bits in (4, 6, 8, 10):
            engine = CrossbarEngine(adc=ADC(bits=bits,
                                            full_scale=full_scale), **common)
            out = engine.forward(x)
            errs[bits] = float(np.abs(out - ideal).mean() /
                               (np.abs(ideal).mean() + 1e-12))
        lines = ["ADC resolution (bit-accurate engine, relative error "
                 "vs ideal readout):"]
        lines += [f"  {b:>2}-bit ADC  {e:8.4f}" for b, e in errs.items()]
        report("ablation_adc", lines, data=errs)
        return errs

    errs = benchmark.pedantic(run_adc, rounds=1, iterations=1)
    assert errs[10] < errs[4]          # more bits, less error
    assert errs[10] < 0.05             # 10-bit readout is near-ideal
