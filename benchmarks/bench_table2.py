"""Table II: area/power overhead of the digital-offset support per tile.

Paper values: m=16 -> 0.049 mm^2 (13.3%) / 8.05 mW (2.4%);
m=128 -> 0.064 mm^2 (17.2%) / 22.77 mW (6.9%), on a 0.372 mm^2 /
330 mW ISAAC tile. Our model is calibrated to the paper's published
synthesis anchors (see repro/arch/area.py), so the check here is tight.
"""

from _common import report

from repro.arch.area import sum_multiply_latency_ok
from repro.eval.experiments import run_table2

PAPER = {
    16: dict(area=0.049, power=8.05, area_frac=0.133, power_frac=0.024),
    128: dict(area=0.064, power=22.77, area_frac=0.172, power_frac=0.069),
}


def run():
    rows = run_table2((16, 128))
    lines = ["Table II — overhead in an ISAAC tile (0.372 mm^2 / 330 mW)",
             f"{'m':>5}{'area mm^2':>11}{'paper':>8}"
             f"{'power mW':>10}{'paper':>8}"]
    for r in rows:
        p = PAPER[r["granularity"]]
        lines.append(f"{r['granularity']:>5}{r['total_area_mm2']:>11.3f}"
                     f"{p['area']:>8.3f}{r['total_power_mw']:>10.2f}"
                     f"{p['power']:>8.2f}")
    lines.append(f"Sum+Multi fits the 100 ns pipeline cycle: "
                 f"{all(sum_multiply_latency_ok(m) for m in (16, 64, 128))}")
    report("table2", lines, data=rows)
    return rows


def test_table2(benchmark):
    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    by = {r["granularity"]: r for r in rows}
    for m, p in PAPER.items():
        assert abs(by[m]["total_area_mm2"] - p["area"]) < 0.003
        assert abs(by[m]["total_power_mw"] - p["power"]) < 1.0
    # Trend: overhead grows with m (adders outpace register savings).
    assert by[128]["total_area_mm2"] > by[16]["total_area_mm2"]
    assert by[128]["total_power_mw"] > by[16]["total_power_mw"]
