"""Served inference: micro-batched throughput vs a serial baseline.

Starts a real ``ServeServer`` (loopback TCP, ephemeral port) over a
programmed lenet deployment and drives it twice through the stdlib
client:

* **serial** — one connection issuing single-sample requests
  back-to-back: the one-request-at-a-time floor every serving stack
  degrades to without batching;
* **batched** — a fleet of concurrent client threads, each its own
  connection, so the micro-batcher actually coalesces traffic into
  fixed-shape ``max_batch`` dispatches.

Two sidecars land in the bench-regress gate: ``serve_throughput``
(whose ``elapsed_s`` is the total wall time to serve the fixed
concurrent request count — inverse throughput, so a served-throughput
regression shows up exactly like a kernel slowdown) and ``serve_p99``
(``elapsed_s`` = p99 request latency of the batched pass in seconds).

The reproducible claim (acceptance floor): micro-batched throughput is
at least 2x the serial baseline on the same machine — the batcher must
actually amortize the crossbar forward across coalesced requests.
"""

import asyncio
import tempfile
import threading
import time

from _common import backend, preset, report

from repro.cache import CacheStore
from repro.serve import (InferenceService, ModelRegistry, ServeClient,
                         ServeConfig, ServeServer)

CONCURRENCY = 16
BATCHED_REQUESTS = 512
SERIAL_REQUESTS = 128


def _start_server(service):
    """Run the server on a background thread; return (server, endpoint,
    thread)."""
    ready = threading.Event()
    endpoint = {}

    def on_ready(host, port):
        endpoint["host"], endpoint["port"] = host, port
        ready.set()

    server = ServeServer(service, port=0, on_ready=on_ready)
    thread = threading.Thread(target=lambda: asyncio.run(server.run()),
                              daemon=True)
    thread.start()
    if not ready.wait(timeout=600):
        raise TimeoutError("serve server did not come up")
    return server, endpoint, thread


def _serial_pass(endpoint, n_test):
    """n single-sample requests back-to-back on one connection."""
    with ServeClient(endpoint["host"], endpoint["port"]) as client:
        start = time.perf_counter()
        for i in range(SERIAL_REQUESTS):
            client.infer(indices=[i % n_test])
        return time.perf_counter() - start


def _batched_pass(endpoint, n_test):
    """The concurrent fleet: per-thread connections, shared wall clock.

    Returns (wall_s, sorted per-request latencies).
    """
    per_thread = BATCHED_REQUESTS // CONCURRENCY
    latencies = [[] for _ in range(CONCURRENCY)]
    barrier = threading.Barrier(CONCURRENCY + 1)

    def worker(tid):
        with ServeClient(endpoint["host"], endpoint["port"]) as client:
            barrier.wait()
            for i in range(per_thread):
                t0 = time.perf_counter()
                client.infer(indices=[(tid * per_thread + i) % n_test])
                latencies[tid].append(time.perf_counter() - t0)

    threads = [threading.Thread(target=worker, args=(tid,))
               for tid in range(CONCURRENCY)]
    for t in threads:
        t.start()
    barrier.wait()
    start = time.perf_counter()
    for t in threads:
        t.join()
    wall = time.perf_counter() - start
    flat = sorted(lat for per in latencies for lat in per)
    return wall, flat


def _quantile(sorted_values, q):
    if not sorted_values:
        return 0.0
    pos = min(len(sorted_values) - 1, round(q * (len(sorted_values) - 1)))
    return sorted_values[int(pos)]


def run():
    from repro.eval.experiments import build_workload

    wl = build_workload("lenet", preset=preset(), seed=0)
    config = ServeConfig(workload="lenet", preset=preset(),
                         max_batch=8, max_wait_ms=2.0, queue_limit=256)
    with tempfile.TemporaryDirectory() as tmp:
        service = InferenceService(config,
                                   registry=ModelRegistry(CacheStore(tmp)),
                                   workload=wl)
        service.prepare()
        n_test = wl.test.images.shape[0]
        server, endpoint, thread = _start_server(service)
        try:
            serial_s = _serial_pass(endpoint, n_test)
            batched_s, latencies = _batched_pass(endpoint, n_test)
        finally:
            with ServeClient(endpoint["host"], endpoint["port"]) as client:
                client.shutdown()
            thread.join(timeout=60)

    serial_rps = SERIAL_REQUESTS / serial_s
    batched_rps = BATCHED_REQUESTS / batched_s
    speedup = batched_rps / serial_rps
    stats = server.stats()
    mean_batch = (stats["requests"] - SERIAL_REQUESTS) / max(
        1, stats["batches"] - SERIAL_REQUESTS)
    p50 = _quantile(latencies, 0.50)
    p95 = _quantile(latencies, 0.95)
    p99 = _quantile(latencies, 0.99)

    throughput_lines = [
        f"Served throughput — lenet ({preset()}, {backend()} backend)",
        f"serial:   {serial_rps:8.1f} req/s "
        f"({SERIAL_REQUESTS} requests, {serial_s:.3f} s)",
        f"batched:  {batched_rps:8.1f} req/s "
        f"({BATCHED_REQUESTS} requests x {CONCURRENCY} clients, "
        f"{batched_s:.3f} s)",
        f"speedup:  {speedup:8.1f}x over serial (acceptance floor: 2x)",
        f"batches:  {stats['batches']} dispatches, "
        f"~{mean_batch:.1f} live samples each (max_batch 8)",
    ]
    data = {"serial_rps": serial_rps, "batched_rps": batched_rps,
            "speedup": speedup, "concurrency": CONCURRENCY,
            "requests": BATCHED_REQUESTS, "serial_requests": SERIAL_REQUESTS,
            "batches": stats["batches"], "shed": stats["shed"],
            "latency_p50_s": p50, "latency_p95_s": p95, "latency_p99_s": p99}
    # elapsed_s = wall seconds for the fixed batched request count, so
    # bench_diff's slowdown ratio tracks inverse served throughput.
    report("serve_throughput", throughput_lines, data=data,
           elapsed_s=batched_s)
    report("serve_p99",
           [f"Served tail latency — batched pass, {CONCURRENCY} clients",
            f"p50: {p50 * 1e3:8.2f} ms   p95: {p95 * 1e3:8.2f} ms   "
            f"p99: {p99 * 1e3:8.2f} ms"],
           data=data, elapsed_s=p99)
    return serial_rps, batched_rps


def test_serve_throughput(benchmark):
    serial_rps, batched_rps = benchmark.pedantic(run, rounds=1, iterations=1)
    # The acceptance claim: micro-batching >= 2x serial throughput.
    assert batched_rps >= 2 * serial_rps
