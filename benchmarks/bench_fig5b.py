"""Fig. 5(b): ResNet-18 accuracy, methods x granularities, SLC, sigma=0.5.

Paper reference points: plain near-chance, VAWO*/PWT alone insufficient
for the deeper network, VAWO*+PWT recovers to 91.37% at m=16 (2.77%
below the 94.14% ideal).

Our substrate is a width-slim ResNet-18 on synthetic CIFAR (see
DESIGN.md §2); the claim under test is the *shape*: only the combined
scheme recovers most of the ideal accuracy, and PWT alone is much
weaker than it was for LeNet.
"""

from _common import fmt_pct, jobs, preset, report, trials

from repro.eval.experiments import run_fig5_accuracy

PAPER = {
    ("plain", 16): 0.10, ("vawo*", 16): 0.35, ("pwt", 16): 0.20,
    ("vawo*+pwt", 16): 0.9137, ("vawo*+pwt", 128): 0.85,
}
PAPER_IDEAL = 0.9414


def run():
    if preset() == "full":
        methods = ("plain", "vawo", "vawo*", "pwt", "vawo*+pwt")
        granularities = (16, 64, 128)
    else:
        methods = ("plain", "vawo*", "pwt", "vawo*+pwt")
        granularities = (16, 128)
    rows = run_fig5_accuracy("resnet18", preset=preset(), methods=methods,
                             granularities=granularities, sigma=0.5,
                             n_trials=trials(), jobs=jobs())
    lines = ["Fig. 5(b) — ResNet-18 (slim), SLC, sigma=0.5",
             f"{'method':<12}{'m':>5}{'ours':>9}{'paper':>9}"]
    for r in rows:
        paper = PAPER.get((r.method, r.granularity))
        paper_s = fmt_pct(paper) if paper is not None else "      -"
        lines.append(f"{r.method:<12}{r.granularity:>5}"
                     f"{fmt_pct(r.mean_accuracy):>9}{paper_s:>9}")
    lines.append(f"{'ideal':<12}{'':>5}{fmt_pct(rows[0].ideal_accuracy):>9}"
                 f"{fmt_pct(PAPER_IDEAL):>9}")
    report("fig5b", lines, data=rows)
    return rows


def test_fig5b(benchmark):
    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    by = {(r.method, r.granularity): r.mean_accuracy for r in rows}
    ideal = rows[0].ideal_accuracy
    assert by[("plain", 16)] < 0.4                    # plain collapses
    # The combined scheme dominates every standalone technique...
    assert by[("vawo*+pwt", 16)] >= by[("vawo*", 16)]
    assert by[("vawo*+pwt", 16)] >= by[("pwt", 16)]
    # ...by a wide margin, recovering a large share of the ideal
    # accuracy (our slim substrate recovers less than the paper's
    # full-width ResNet-18 — see EXPERIMENTS.md).
    assert by[("vawo*+pwt", 16)] >= by[("plain", 16)] + 0.3
    assert by[("vawo*+pwt", 16)] >= 0.5 * ideal
