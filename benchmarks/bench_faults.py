"""Extension: stuck-at faults on top of variation.

The paper contrasts its digital offsets with per-device SAF
compensation (Zhang & Hu, ASP-DAC'20), arguing group-shared offsets are
cheaper. This bench quantifies how much SAF damage the offset machinery
absorbs *in addition to* the variation it was designed for: LeNet under
sigma=0.5 with increasing SAF rates, plain vs VAWO*+PWT.
"""

from _common import fmt_pct, preset, report, trials

from repro.core.pipeline import DeployConfig, Deployer
from repro.eval.accuracy import evaluate_deployment
from repro.eval.experiments import _default_pwt, build_workload


def run():
    wl = build_workload("lenet", preset=preset(), seed=0)
    rates = ((0.0, 0.0), (0.05, 0.01), (0.10, 0.02))
    grid = {}
    for saf in rates:
        for method in ("plain", "vawo*+pwt"):
            cfg = DeployConfig.from_method(
                method, sigma=0.5, granularity=16,
                saf_rates=None if saf == (0.0, 0.0) else saf,
                pwt=_default_pwt(preset()))
            deployer = Deployer(wl.model, wl.train, cfg, rng=1)
            grid[(saf, method)] = evaluate_deployment(
                deployer, wl.test, n_trials=trials(), rng=2).mean
    lines = ["Extension — stuck-at faults + variation (LeNet, sigma=0.5)",
             f"{'SA0/SA1 rate':<14}{'plain':>9}{'vawo*+pwt':>11}"]
    for saf in rates:
        lines.append(f"{saf[0]:.2f}/{saf[1]:.2f}      "
                     f"{fmt_pct(grid[(saf, 'plain')]):>9}"
                     f"{fmt_pct(grid[(saf, 'vawo*+pwt')]):>11}")
    report("faults", lines,
           data=[{"sa0": saf[0], "sa1": saf[1], "method": method,
                  "mean_accuracy": acc}
                 for (saf, method), acc in grid.items()])
    return grid


def test_saf_tolerance(benchmark):
    grid = benchmark.pedantic(run, rounds=1, iterations=1)
    rates = ((0.0, 0.0), (0.05, 0.01), (0.10, 0.02))
    # The offset machinery keeps recovering most accuracy under faults.
    for saf in rates:
        assert grid[(saf, "vawo*+pwt")] > grid[(saf, "plain")] + 0.3
    # Damage grows with fault rate for the plain scheme.
    assert grid[(rates[0], "vawo*+pwt")] >= \
        grid[(rates[-1], "vawo*+pwt")] - 0.1
