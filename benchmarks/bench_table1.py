"""Table I: relative total device reading power, VAWO* vs plain.

Paper values (2-bit MLC): LeNet 68.87% (m=16) / 79.95% (m=128);
ResNet 57.61% (m=16) / 72.24% (m=128). The claims under test: VAWO*
always *reduces* reading power (it biases cells toward high-resistance
states), and finer granularity saves more than coarser.
"""

from _common import fmt_pct, preset, report

from repro.eval.experiments import run_table1

PAPER = {
    ("lenet", 16): 0.6887, ("lenet", 128): 0.7995,
    ("resnet18", 16): 0.5761, ("resnet18", 128): 0.7224,
}


def run():
    results = run_table1(preset=preset(), granularities=(16, 128))
    lines = ["Table I — relative reading power, VAWO* vs plain (2-bit MLC)",
             f"{'workload':<12}{'m':>5}{'ours':>9}{'paper':>9}"]
    for name, per_m in results.items():
        for m, value in per_m.items():
            lines.append(f"{name:<12}{m:>5}{fmt_pct(value):>9}"
                         f"{fmt_pct(PAPER[(name, m)]):>9}")
    report("table1", lines, data=results)
    return results


def test_table1(benchmark):
    results = benchmark.pedantic(run, rounds=1, iterations=1)
    for name, per_m in results.items():
        # VAWO* reduces reading power in every configuration.
        for m, value in per_m.items():
            assert value < 1.0, f"{name} m={m} did not save power"
        # Finer sharing granularity saves at least as much.
        assert per_m[16] <= per_m[128] + 0.05
