"""Table III: comparison with DVA / PM / DVA+PM on VGG-16.

Paper values: accuracy loss DVA 13% (sigma=0.5), PM 12.02% and DVA+PM
5.48% (sigma=0.8), this work 4.94% (sigma=0.8); normalised crossbar
numbers 2 / 2.5 / 2.5 / 1. The claims under test: this work has the
smallest accuracy loss of all four methods while using the fewest
crossbars (the baselines' crossbar numbers are architectural constants
and must match the paper exactly).
"""

from _common import fmt_pct, jobs, preset, report, trials

from repro.eval.experiments import run_table3

PAPER = {
    "DVA": dict(loss=0.13, xbars=2.0),
    "PM": dict(loss=0.1202, xbars=2.5),
    "DVA+PM": dict(loss=0.0548, xbars=2.5),
    "This work": dict(loss=0.0494, xbars=1.0),
}


def run():
    rows = run_table3(preset=preset(), n_trials=trials(), jobs=jobs())
    lines = ["Table III — comparison on VGG-16 (slim)",
             f"{'method':<12}{'sigma':>6}{'loss':>9}{'paper':>9}"
             f"{'xbars':>7}{'paper':>7}"]
    for r in rows:
        p = PAPER[r.method]
        lines.append(f"{r.method:<12}{r.sigma:>6.1f}"
                     f"{fmt_pct(r.accuracy_loss):>9}{fmt_pct(p['loss']):>9}"
                     f"{r.crossbar_number:>7.1f}{p['xbars']:>7.1f}")
    report("table3", lines, data=rows)
    return rows


def test_table3(benchmark):
    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    by = {r.method: r for r in rows}
    # Crossbar-count normalisation is exact (architectural constants).
    for method, p in PAPER.items():
        assert by[method].crossbar_number == p["xbars"]
    # This work beats PM — the baseline that, like us, deploys a
    # conventionally trained network — while using 2.5x fewer crossbars.
    # (On our substrate the DVA-retrained rows are disproportionately
    # strong: a slim net on an easy synthetic task trains to near-full
    # robustness, which full-scale CIFAR networks do not — see
    # EXPERIMENTS.md. The paper's own future work, DVA + offsets, is
    # measured in bench_future_work.py.)
    ours = by["This work"].accuracy_loss
    assert ours < by["PM"].accuracy_loss - 0.02
    assert by["This work"].crossbar_number < min(
        r.crossbar_number for r in rows if r.method != "This work")
