#!/usr/bin/env bash
# One-shot local quality gate: repro-lint, (optional) ruff + mypy, tests.
#
# repro-lint and pytest only need numpy/pytest and always run; ruff and
# mypy are CI-installed extras (`pip install -e ".[lint]"`), so locally
# they run only when present rather than failing the whole gate.
set -euo pipefail
cd "$(dirname "$0")/.."

export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

echo "== repro-lint (R1-R12, JSON sidecar) =="
python -m tools.lint src tests benchmarks --json lint-report.json

echo "== repro-lint R6 gate (no print in library) =="
python -m tools.lint --select R6 src

echo "== repro-lint R7 gate (stride tricks only in repro.backend) =="
python -m tools.lint --select R7 src

echo "== repro-lint R8 gate (stage hashes match committed baseline) =="
python -m tools.lint --select R8 src

if command -v ruff >/dev/null 2>&1; then
    echo "== ruff =="
    ruff check src tests benchmarks tools
else
    echo "== ruff == (not installed, skipped — CI runs it)"
fi

if command -v mypy >/dev/null 2>&1; then
    echo "== mypy =="
    mypy
else
    echo "== mypy == (not installed, skipped — CI runs it)"
fi

echo "== pytest =="
python -m pytest -x -q

echo "== pytest (REPRO_DEBUG=1 shape contracts) =="
REPRO_DEBUG=1 python -m pytest -x -q tests/xbar tests/core tests/utils

echo "All checks passed."
